"""SPECfp-style numeric kernels (semi-regular).

Each keeps its namesake's dominant loop behavior: milc's complex
su3 arithmetic, namd's cutoff force loop, soplex's sparse pricing,
povray's ray-sphere intersection, sphinx3's Gaussian scoring.
"""

from repro.programs.builder import KernelBuilder
from repro.workloads.base import workload, fdata, idata, rng, scaled


@workload("433.milc", "specfp", "su3 complex matrix-vector products")
def milc(scale):
    k = KernelBuilder("milc")
    sites = scaled(48, scale, minimum=8)
    dim = 3
    mat_re = k.array("mat_re", fdata("milc", sites * dim * dim))
    mat_im = k.array("mat_im", fdata("milc", sites * dim * dim, salt=1))
    vec_re = k.array("vec_re", fdata("milc", sites * dim, salt=2))
    vec_im = k.array("vec_im", fdata("milc", sites * dim, salt=3))
    out_re = k.array("out_re", sites * dim)
    out_im = k.array("out_im", sites * dim)
    with k.function("main"):
        with k.loop(sites) as s:
            mbase = k.mul(s, dim * dim)
            vbase = k.mul(s, dim)
            with k.loop(dim) as r:
                with k.temps():
                    row = k.add(mbase, k.mul(r, dim))
                    are = k.var(0.0)
                    aim = k.var(0.0)
                    for c in range(dim):
                        with k.temps():
                            mre = k.ld(mat_re, k.add(row, c))
                            mim = k.ld(mat_im, k.add(row, c))
                            vre = k.ld(vec_re, k.add(vbase, c))
                            vim = k.ld(vec_im, k.add(vbase, c))
                            k.set(are, k.fadd(are, k.fsub(
                                k.fmul(mre, vre), k.fmul(mim, vim))))
                            k.set(aim, k.fadd(aim, k.fadd(
                                k.fmul(mre, vim), k.fmul(mim, vre))))
                    idx = k.add(vbase, r)
                    k.st(out_re, idx, are)
                    k.st(out_im, idx, aim)
        k.halt()
    return k


@workload("444.namd", "specfp", "pairlist force loop with cutoff")
def namd(scale):
    k = KernelBuilder("namd")
    atoms = scaled(32, scale, minimum=8)
    neighbors = 16
    source = rng("namd")
    pairs = [source.randrange(atoms) for _ in range(atoms * neighbors)]
    x = k.array("x", fdata("namd", atoms))
    y = k.array("y", fdata("namd", atoms, salt=1))
    nbr = k.array("nbr", pairs)
    force = k.array("force", atoms)
    with k.function("main"):
        with k.loop(atoms) as i:
            xi = k.ld(x, i)
            yi = k.ld(y, i)
            f = k.var(0.0)
            nbase = k.mul(i, neighbors)
            with k.loop(neighbors) as nn:
                with k.temps():
                    j = k.ld(k.const(nbr.base), k.add(nbase, nn))
                    xj = k.ld(k.const(x.base), j)   # gather
                    yj = k.ld(k.const(y.base), j)
                    dx = k.fsub(xj, xi)
                    dy = k.fsub(yj, yi)
                    r2 = k.fadd(k.fmul(dx, dx), k.fmul(dy, dy))
                    within = k.fslt(r2, 60.0)    # biased mostly-taken

                    def then_fn():
                        inv = k.fdiv(1.0, k.fadd(r2, 0.5))
                        k.set(f, k.fadd(f, k.fmul(inv, inv)))

                    k.if_(within, then_fn)
            k.st(force, i, f)
        k.halt()
    return k


@workload("450.soplex", "specfp", "sparse pricing: gather + argmax")
def soplex(scale):
    k = KernelBuilder("soplex")
    cols = scaled(96, scale, minimum=16)
    nnz = 5
    source = rng("soplex")
    ridx = k.array(
        "ridx", [source.randrange(cols) for _ in range(cols * nnz)])
    vals = k.array("vals", fdata("soplex", cols * nnz, low=-2.0,
                                 high=2.0))
    duals = k.array("duals", fdata("soplex", cols, salt=1))
    prices = k.array("prices", cols)
    pivot = k.array("pivot", 1)
    with k.function("main"):
        # Price each column (sparse dot products; gathers).
        with k.loop(cols) as c:
            base = k.mul(c, nnz)
            acc = k.var(0.0)
            with k.loop(nnz) as e:
                with k.temps():
                    off = k.add(base, e)
                    r = k.ld(k.const(ridx.base), off)
                    v = k.ld(k.const(vals.base), off)
                    d = k.ld(k.const(duals.base), r)
                    k.set(acc, k.fadd(acc, k.fmul(v, d)))
            k.st(prices, c, acc)
        # Argmax scan for the pivot (branchy, unpredictable).
        best = k.var(-1e30)
        best_c = k.var(0)
        with k.loop(cols) as c:
            with k.temps():
                p = k.ld(prices, c)
                better = k.fslt(best, p)

                def then_fn():
                    k.set(best, k.fmax(best, p))
                    k.set(best_c, k.add(c, 0))

                k.if_(better, then_fn)
        k.st(pivot, 0, best_c)
        k.halt()
    return k


@workload("453.povray", "specfp", "ray-sphere intersection batch")
def povray(scale):
    k = KernelBuilder("povray")
    n_rays = scaled(96, scale, minimum=16)
    spheres = 8
    dx = k.array("dx", fdata("povray", n_rays, low=-1.0, high=1.0))
    dy = k.array("dy", fdata("povray", n_rays, low=-1.0, high=1.0,
                             salt=1))
    sx = k.array("sx", fdata("povray", spheres, salt=2))
    sy = k.array("sy", fdata("povray", spheres, salt=3))
    rad = k.array("rad", fdata("povray", spheres, low=0.5, high=2.0,
                               salt=4))
    hits = k.array("hits", n_rays)
    with k.function("main"):
        with k.loop(n_rays) as r:
            rdx = k.ld(dx, r)
            rdy = k.ld(dy, r)
            nearest = k.var(1e30)
            with k.loop(spheres) as s:
                with k.temps():
                    cx = k.ld(sx, s)
                    cy = k.ld(sy, s)
                    rr = k.ld(rad, s)
                    b = k.fadd(k.fmul(rdx, cx), k.fmul(rdy, cy))
                    cterm = k.fsub(
                        k.fadd(k.fmul(cx, cx), k.fmul(cy, cy)),
                        k.fmul(rr, rr))
                    disc = k.fsub(k.fmul(b, b), cterm)
                    hit = k.fslt(0.0, disc)    # ~50/50: varying control

                    def then_fn():
                        t = k.fsub(b, k.fsqrt(disc))
                        k.set(nearest, k.fmin(nearest, t))

                    k.if_(hit, then_fn)
            k.st(hits, r, nearest)
        k.halt()
    return k


@workload("482.sphinx3", "specfp", "GMM log-likelihood scoring")
def sphinx3(scale):
    k = KernelBuilder("sphinx3")
    frames = scaled(24, scale, minimum=6)
    dims = 16
    feat = k.array("feat", fdata("sphinx3", frames * dims,
                                 low=-1.0, high=1.0))
    mean = k.array("mean", fdata("sphinx3", dims, salt=1))
    var = k.array("var", fdata("sphinx3", dims, low=0.5, high=2.0,
                               salt=2))
    score = k.array("score", frames)
    with k.function("main"):
        with k.loop(frames) as f:
            base = k.mul(f, dims)
            acc = k.var(0.0)
            with k.loop(dims) as d:
                with k.temps():
                    x = k.ld(k.const(feat.base), k.add(base, d))
                    m = k.ld(mean, d)
                    v = k.ld(var, d)
                    diff = k.fsub(x, m)
                    k.set(acc, k.fadd(
                        acc, k.fmul(k.fmul(diff, diff), v)))
            k.st(score, f, acc)
        k.halt()
    return k
