"""Mediabench-style codec kernels (semi-regular).

Each benchmark is multi-phase, mirroring real codecs: a data-parallel
transform phase (DCT/wavelet/filter), a biased-control phase
(quantization, clamping), and an irregular serial phase (entropy
coding).  This phase mix is what lets a single application use several
BSAs (paper Fig. 13: cjpeg uses SIMD, NS-DF and Trace-P).
"""

from repro.programs.builder import KernelBuilder
from repro.workloads.base import workload, fdata, idata, scaled


def _dct_phase(k, blocks, src, dst, coeffs, block_size=8):
    """Data-parallel transform over blocks (vectorizable inner loop)."""
    with k.loop(blocks) as b:
        base = k.mul(b, block_size)
        with k.loop(block_size) as u:
            with k.temps():
                cu = k.ld(coeffs, u)
                acc = k.var(0.0)
                # Unrolled short dot product against the basis row.
                for x in range(0, block_size, 2):
                    with k.temps():
                        s0 = k.ld(src, k.add(base, x))
                        s1 = k.ld(src, k.add(base, x + 1))
                        k.set(acc, k.fadd(acc, k.fadd(
                            k.fmul(s0, cu), k.fmul(s1, cu))))
                k.st(dst, k.add(base, u), acc)


def _quant_phase(k, n, src, dst, threshold=0.75):
    """Biased-control quantization (hot path: below threshold)."""
    with k.loop(n) as i:
        with k.temps():
            v = k.ld(k.const(src.base), i)
            small = k.fslt(v, threshold * 40.0)

            def then_fn():
                k.st(k.const(dst.base), i, k.fmul(v, 0.125))

            def else_fn():
                k.st(k.const(dst.base), i,
                     k.fadd(k.fmul(v, 0.25), 1.0))

            k.if_(small, then_fn, else_fn)


def _entropy_phase(k, n, src, out):
    """Serial run-length/entropy phase (irregular, carried deps)."""
    run = k.var(0)
    pos = k.var(0)
    with k.loop(n) as i:
        with k.temps():
            v = k.ld(k.const(src.base), i)
            zero = k.fslt(v, 0.5)

            def then_fn():
                k.set(run, k.add(run, 1))

            def else_fn():
                k.st(k.const(out.base), pos, run)
                k.st(k.const(out.base), k.add(pos, 1), v)
                k.set(pos, k.add(pos, 2))
                k.set(run, 0)

            k.if_(zero, then_fn, else_fn)


def _jpeg(name, blocks_base):
    def factory(scale):
        k = KernelBuilder(name)
        blocks = scaled(blocks_base, scale, minimum=4)
        n = blocks * 8
        src = k.array("src", fdata(name, n, low=0.0, high=64.0))
        freq = k.array("freq", n)
        quant = k.array("quant", n)
        coded = k.array("coded", 2 * n)
        coeffs = k.array("coeffs", fdata(name, 8, low=-1.0, high=1.0,
                                         salt=1))
        with k.function("main"):
            _dct_phase(k, blocks, src, freq, coeffs)
            _quant_phase(k, n, freq, quant)
            _entropy_phase(k, n, quant, coded)
            k.halt()
        return k
    return factory


workload("cjpeg1", "mediabench", "JPEG encode: DCT + quant + RLE")(
    _jpeg("cjpeg1", 24))
workload("cjpeg2", "mediabench", "JPEG encode, larger input")(
    _jpeg("cjpeg2", 40))


def _djpeg(name, blocks_base):
    def factory(scale):
        k = KernelBuilder(name)
        blocks = scaled(blocks_base, scale, minimum=4)
        n = blocks * 8
        coded = k.array("coded", fdata(name, n, low=0.0, high=16.0))
        freq = k.array("freq", n)
        pix = k.array("pix", n)
        coeffs = k.array("coeffs", fdata(name, 8, low=-1.0, high=1.0,
                                         salt=1))
        with k.function("main"):
            # Dequantize (pure data parallel).
            with k.loop(n) as i:
                with k.temps():
                    v = k.ld(coded, i)
                    k.st(freq, i, k.fmul(v, 8.0))
            # IDCT-ish transform.
            _dct_phase(k, blocks, freq, pix, coeffs)
            # Clamp with biased control (most pixels in range).
            with k.loop(n) as i:
                with k.temps():
                    v = k.ld(pix, i)
                    over = k.fslt(255.0, v)

                    def then_fn():
                        k.st(pix, i, 255.0)

                    k.if_(over, then_fn)
            k.halt()
        return k
    return factory


workload("djpeg1", "mediabench", "JPEG decode: dequant + IDCT + clamp")(
    _djpeg("djpeg1", 24))
workload("djpeg2", "mediabench", "JPEG decode, larger input")(
    _djpeg("djpeg2", 40))


@workload("gsmdecode", "mediabench", "GSM decode: LTP filter + postfilter")
def gsmdecode(scale):
    k = KernelBuilder("gsmdecode")
    frames = scaled(12, scale, minimum=3)
    n = frames * 40
    residual = k.array("residual", fdata("gsmdecode", n + 8))
    ltp = k.array("ltp", fdata("gsmdecode", 8, salt=1))
    speech = k.array("speech", n)
    with k.function("main"):
        # Long-term prediction: short dot products (NS-DF friendly).
        with k.loop(n) as i:
            acc = k.var(0.0)
            with k.loop(8) as t:
                with k.temps():
                    r = k.ld(residual, k.add(i, t))
                    c = k.ld(ltp, t)
                    k.set(acc, k.fadd(acc, k.fmul(r, c)))
            k.st(speech, i, acc)
        # De-emphasis postfilter: carried dependence (serial-ish).
        prev = k.var(0.0)
        with k.loop(n) as i:
            with k.temps():
                s = k.ld(speech, i)
                v = k.fadd(s, k.fmul(prev, 0.86))
                k.st(speech, i, v)
                k.set(prev, v)
        k.halt()
    return k


@workload("gsmencode", "mediabench", "GSM encode: autocorr + quant search")
def gsmencode(scale):
    k = KernelBuilder("gsmencode")
    n = scaled(320, scale, minimum=80, multiple=8)
    speech = k.array("speech", fdata("gsmencode", n + 8,
                                     low=-4.0, high=4.0))
    autoc = k.array("autoc", 8)
    levels = k.array("levels", sorted(fdata("gsmencode", 8, salt=1)))
    quantized = k.array("quantized", n)
    with k.function("main"):
        # Autocorrelation lags (vectorizable reductions).
        with k.loop(8) as lag:
            acc = k.var(0.0)
            with k.loop(n) as i:
                with k.temps():
                    a = k.ld(speech, i)
                    b = k.ld(speech, k.add(i, lag))
                    k.set(acc, k.fadd(acc, k.fmul(a, b)))
            k.st(autoc, lag, acc)
        # Level search: biased early-exit scan (hot trace).
        with k.loop(n) as i:
            with k.temps():
                v = k.ld(speech, i)
                idx = k.var(0)
                with k.loop(7) as l:
                    with k.temps():
                        lv = k.ld(levels, l)
                        below = k.fslt(lv, v)

                        def then_fn():
                            k.set(idx, k.add(idx, 1))

                        k.if_(below, then_fn)
                k.st(quantized, i, idx)
        k.halt()
    return k


@workload("h263enc", "mediabench", "H.263 encode: SAD search + mode decision")
def h263enc(scale):
    k = KernelBuilder("h263enc")
    mbs = scaled(12, scale, minimum=3)
    mb = 16
    cur = k.array("cur", fdata("h263enc", mbs * mb, low=0.0, high=255.0))
    ref = k.array("ref", fdata("h263enc", mbs * mb + 4, low=0.0,
                               high=255.0, salt=1))
    sads = k.array("sads", mbs * 4)
    modes = k.array("modes", mbs)
    with k.function("main"):
        # Motion search: SAD over 4 candidate offsets (data parallel).
        with k.loop(mbs) as m:
            base = k.mul(m, mb)
            with k.loop(4) as cand:
                acc = k.var(0.0)
                with k.loop(mb) as x:
                    with k.temps():
                        c = k.ld(k.const(cur.base), k.add(base, x))
                        r = k.ld(k.const(ref.base),
                                 k.add(k.add(base, x), cand))
                        d = k.fsub(c, r)
                        k.set(acc, k.fadd(acc, k.fmax(d, k.fsub(0.0, d))))
                k.st(k.const(sads.base), k.add(k.mul(m, 4), cand), acc)
        # Mode decision: compare SADs (branchy, biased toward inter).
        with k.loop(mbs) as m:
            with k.temps():
                sbase = k.mul(m, 4)
                best = k.var(1e30)
                with k.loop(4) as cand:
                    with k.temps():
                        s = k.ld(k.const(sads.base), k.add(sbase, cand))
                        k.set(best, k.fmin(best, s))
                intra = k.fslt(2000.0, best)   # rare

                def then_fn():
                    k.st(modes, m, 1)

                def else_fn():
                    k.st(modes, m, 0)

                k.if_(intra, then_fn, else_fn)
        k.halt()
    return k


@workload("h264dec", "mediabench", "H.264 decode: 6-tap filter + deblock")
def h264dec(scale):
    k = KernelBuilder("h264dec")
    n = scaled(256, scale, minimum=32, multiple=8)
    src = k.array("src", fdata("h264dec", n + 6, low=0.0, high=255.0))
    interp = k.array("interp", n)
    edges = k.array("edges", idata("h264dec", n, low=0, high=4, salt=1))
    with k.function("main"):
        # Half-pel 6-tap interpolation (classic SIMD loop).
        with k.loop(n) as i:
            with k.temps():
                a = k.ld(src, i)
                b = k.ld(src, k.add(i, 1))
                c = k.ld(src, k.add(i, 2))
                d = k.ld(src, k.add(i, 3))
                e = k.ld(src, k.add(i, 4))
                f = k.ld(src, k.add(i, 5))
                mid = k.fmul(k.fadd(c, d), 20.0)
                outer = k.fadd(a, f)
                inner = k.fmul(k.fadd(b, e), 5.0)
                v = k.fmul(k.fadd(k.fsub(mid, inner), outer), 0.03125)
                k.st(interp, i, v)
        # Deblocking: boundary-strength conditional smoothing (biased).
        with k.loop(n - 1) as i:
            with k.temps():
                bs = k.ld(edges, i)
                strong = k.slt(2, bs)   # ~40% taken

                def then_fn():
                    p = k.ld(interp, i)
                    q = k.ld(interp, k.add(i, 1))
                    avg = k.fmul(k.fadd(p, q), 0.5)
                    k.st(interp, i, avg)

                k.if_(strong, then_fn)
        k.halt()
    return k


def _jpg2000(name, direction):
    def factory(scale):
        k = KernelBuilder(name)
        n = scaled(256, scale, minimum=32, multiple=16)
        data = k.array("data", fdata(name, n + 2, low=-8.0, high=8.0))
        sig = k.array("sig", n)
        with k.function("main"):
            # Lifting wavelet step on even/odd pairs (stride 2).
            with k.loop(n // 2) as i:
                with k.temps():
                    even_i = k.mul(i, 2)
                    odd_i = k.add(even_i, 1)
                    even = k.ld(data, even_i)
                    odd = k.ld(data, odd_i)
                    nxt = k.ld(data, k.add(even_i, 2))
                    if direction == "enc":
                        detail = k.fsub(
                            odd, k.fmul(k.fadd(even, nxt), 0.5))
                    else:
                        detail = k.fadd(
                            odd, k.fmul(k.fadd(even, nxt), 0.25))
                    k.st(data, odd_i, detail)
            # Bitplane significance coding (serial, branchy).
            run = k.var(0)
            with k.loop(n) as i:
                with k.temps():
                    v = k.ld(data, i)
                    mag = k.fmax(v, k.fsub(0.0, v))
                    significant = k.fslt(1.0, mag)

                    def then_fn():
                        k.st(sig, i, k.add(run, 1))
                        k.set(run, 0)

                    def else_fn():
                        k.set(run, k.add(run, 1))

                    k.if_(significant, then_fn, else_fn)
            k.halt()
        return k
    return factory


workload("jpg2000dec", "mediabench", "JPEG2000 decode: lifting + bitplanes")(
    _jpg2000("jpg2000dec", "dec"))
workload("jpg2000enc", "mediabench", "JPEG2000 encode: lifting + bitplanes")(
    _jpg2000("jpg2000enc", "enc"))


@workload("mpeg2dec", "mediabench", "MPEG-2 decode: VLC + IDCT + motion comp")
def mpeg2dec(scale):
    k = KernelBuilder("mpeg2dec")
    n = scaled(192, scale, minimum=32, multiple=8)
    bits = k.array("bits", idata("mpeg2dec", 2 * n, low=0, high=7))
    coef = k.array("coef", n)
    refa = k.array("refa", fdata("mpeg2dec", n, low=0.0, high=255.0,
                                 salt=1))
    out = k.array("out", n)
    with k.function("main"):
        # VLC decode: data-dependent consumption (serial while loop).
        pos = k.var(0)
        count = k.var(0)

        def cond():
            return k.slt(count, n)

        with k.while_(cond):
            with k.temps():
                code = k.ld(k.const(bits.base), pos)
                short = k.slt(code, 5)   # biased: most codes short

                def then_fn():
                    k.st(k.const(coef.base), count, code)
                    k.set(pos, k.add(pos, 1))

                def else_fn():
                    extra = k.ld(k.const(bits.base), k.add(pos, 1))
                    k.st(k.const(coef.base), count,
                         k.add(k.mul(code, 8), extra))
                    k.set(pos, k.add(pos, 2))

                k.if_(short, then_fn, else_fn)
                k.set(count, k.add(count, 1))
        # Motion compensation + reconstruction (vectorizable).
        with k.loop(n) as i:
            with k.temps():
                c = k.ld(coef, i)
                r = k.ld(refa, i)
                k.st(out, i, k.fadd(r, k.fmul(c, 0.5)))
        k.halt()
    return k


@workload("mpeg2enc", "mediabench", "MPEG-2 encode: SAD + DCT + ratecontrol")
def mpeg2enc(scale):
    k = KernelBuilder("mpeg2enc")
    n = scaled(256, scale, minimum=32, multiple=8)
    cur = k.array("cur", fdata("mpeg2enc", n, low=0.0, high=255.0))
    ref = k.array("ref", fdata("mpeg2enc", n + 2, low=0.0, high=255.0,
                               salt=1))
    resid = k.array("resid", n)
    qlevels = k.array("qlevels", n)
    with k.function("main"):
        # Residual computation (pure SIMD).
        with k.loop(n) as i:
            with k.temps():
                c = k.ld(cur, i)
                r = k.ld(ref, i)
                k.st(resid, i, k.fsub(c, r))
        # Quantize with rate-control feedback (carried dep + branch).
        budget = k.var(400.0)
        with k.loop(n) as i:
            with k.temps():
                v = k.ld(resid, i)
                mag = k.fmax(v, k.fsub(0.0, v))
                affordable = k.fslt(mag, budget)

                def then_fn():
                    k.st(qlevels, i, k.fmul(v, 0.2))
                    k.set(budget, k.fsub(budget, k.fmul(mag, 0.01)))

                def else_fn():
                    k.st(qlevels, i, 0.0)

                k.if_(affordable, then_fn, else_fn)
        k.halt()
    return k
