"""SPECint-style irregular kernels.

These keep the irregular control and memory behavior of their
namesakes: pointer chasing (mcf, parser), data-dependent while loops
(gzip), comparison sorts (bzip2), board scans (sjeng, gobmk), DP
recurrences (hmmer), and the multi-phase encoder h264ref used in the
paper's Fig. 14 switching study.
"""

from repro.programs.builder import KernelBuilder
from repro.workloads.base import workload, fdata, idata, rng, scaled


@workload("164.gzip", "specint", "LZ77 match loop (data-dependent exit)")
def gzip(scale):
    k = KernelBuilder("gzip")
    n = scaled(96, scale, minimum=16)
    window = 16
    text = k.array("text", idata("gzip", n + window, low=0, high=7))
    lengths = k.array("lengths", n)
    with k.function("main"):
        with k.loop(n) as pos:
            best = k.var(0)
            with k.loop(window - 1) as off:
                with k.temps():
                    length = k.var(0)
                    # Match extension: biased continue branch.
                    with k.loop(4) as m:
                        with k.temps():
                            a = k.ld(k.const(text.base),
                                     k.add(pos, m))
                            b = k.ld(k.const(text.base),
                                     k.add(k.add(pos, off), k.add(m, 1)))
                            same = k.seq(a, b)

                            def then_fn():
                                k.set(length, k.add(length, 1))

                            k.if_(same, then_fn)
                    k.set(best, k.max_(best, length))
            k.st(lengths, pos, best)
        k.halt()
    return k


def _mcf(name, nodes_base):
    def factory(scale):
        k = KernelBuilder(name)
        nodes = scaled(nodes_base, scale, minimum=32)
        arcs_per = 4
        source = rng(name)
        head = [source.randrange(nodes) for _ in range(nodes * arcs_per)]
        cost = k.array("cost", idata(name, nodes * arcs_per,
                                     low=1, high=50))
        heads = k.array("heads", head)
        potential = k.array("potential",
                            idata(name, nodes, low=0, high=100, salt=1))
        reduced = k.array("reduced", nodes * arcs_per)
        negsum = k.array("negsum", 1)
        with k.function("main"):
            total = k.var(0)
            with k.loop(nodes) as u:
                pu = k.ld(potential, u)
                abase = k.mul(u, arcs_per)
                with k.loop(arcs_per) as a:
                    with k.temps():
                        off = k.add(abase, a)
                        v = k.ld(k.const(heads.base), off)   # chase
                        pv = k.ld(k.const(potential.base), v)
                        c = k.ld(k.const(cost.base), off)
                        rc = k.sub(k.add(c, pv), pu)
                        k.st(k.const(reduced.base), off, rc)
                        neg = k.slt(rc, 0)    # unpredictable

                        def then_fn():
                            k.set(total, k.add(total, 1))

                        k.if_(neg, then_fn)
            k.st(negsum, 0, total)
            k.halt()
        return k
    return factory


workload("181.mcf", "specint", "network-simplex arc pricing")(
    _mcf("181.mcf", 64))
workload("429.mcf", "specint", "network-simplex arc pricing (larger)")(
    _mcf("429.mcf", 96))


@workload("175.vpr", "specint", "placement cost with conditional swaps")
def vpr(scale):
    k = KernelBuilder("vpr")
    cells = scaled(128, scale, minimum=32)
    px = k.array("px", idata("vpr", cells, low=0, high=63))
    py = k.array("py", idata("vpr", cells, low=0, high=63, salt=1))
    net = k.array("net", idata("vpr", cells, low=0, high=15, salt=2))
    costs = k.array("costs", cells)
    with k.function("main"):
        with k.loop(cells - 1) as c:
            with k.temps():
                x0 = k.ld(px, c)
                y0 = k.ld(py, c)
                x1 = k.ld(px, k.add(c, 1))
                y1 = k.ld(py, k.add(c, 1))
                ddx = k.sub(x1, x0)
                ddy = k.sub(y1, y0)
                dist = k.add(k.max_(ddx, k.sub(0, ddx)),
                             k.max_(ddy, k.sub(0, ddy)))
                same_net = k.seq(k.ld(net, c), k.ld(net, k.add(c, 1)))

                def then_fn():
                    k.st(costs, c, k.mul(dist, 3))

                def else_fn():
                    k.st(costs, c, dist)

                k.if_(same_net, then_fn, else_fn)
        k.halt()
    return k


@workload("197.parser", "specint", "linked dictionary walk")
def parser(scale):
    k = KernelBuilder("parser")
    words = scaled(96, scale, minimum=16)
    chain_len = 12
    buckets = 32
    source = rng("parser")
    # next_of forms chains; key per node.
    next_of = [source.randrange(buckets * chain_len)
               for _ in range(buckets * chain_len)]
    keys = k.array("keys", idata("parser", buckets * chain_len,
                                 low=0, high=500))
    nexts = k.array("nexts", next_of)
    queries = k.array("queries", idata("parser", words, low=0, high=500,
                                       salt=1))
    results = k.array("results", words)
    with k.function("main"):
        with k.loop(words) as w:
            target = k.ld(queries, w)
            node = k.var(0)
            hit = k.var(0)
            with k.loop(chain_len):
                with k.temps():
                    key = k.ld(k.const(keys.base), node)
                    match = k.seq(key, target)

                    def then_fn():
                        k.set(hit, k.add(hit, 1))

                    k.if_(match, then_fn)
                    nxt = k.ld(k.const(nexts.base), node)   # chase
                    k.set(node, k.add(nxt, 0))
            k.st(results, w, hit)
        k.halt()
    return k


def _bzip2(name, n_base):
    def factory(scale):
        k = KernelBuilder(name)
        n = scaled(n_base, scale, minimum=24)
        data = k.array("data", idata(name, 2 * n, low=0, high=255))
        ranks = k.array("ranks", n)
        with k.function("main"):
            # Suffix comparison (unpredictable compare chains).
            with k.loop(n) as i:
                rank = k.var(0)
                with k.loop(n) as j:
                    with k.temps():
                        a = k.ld(k.const(data.base), i)
                        b = k.ld(k.const(data.base), j)
                        less = k.slt(b, a)

                        def then_fn():
                            k.set(rank, k.add(rank, 1))

                        def else_fn():
                            # Tie-break on the next byte.
                            a2 = k.ld(k.const(data.base), k.add(i, 1))
                            b2 = k.ld(k.const(data.base), k.add(j, 1))
                            tie = k.seq(a, b)
                            less2 = k.slt(b2, a2)
                            both = k.and_(tie, less2)

                            def inner():
                                k.set(rank, k.add(rank, 1))

                            k.if_(both, inner)

                        k.if_(less, then_fn, else_fn)
                k.st(ranks, i, rank)
            k.halt()
        return k
    return factory


workload("256.bzip2", "specint", "BWT suffix ranking")(
    _bzip2("256.bzip2", 40))
workload("401.bzip2", "specint", "BWT suffix ranking (larger)")(
    _bzip2("401.bzip2", 56))


@workload("403.gcc", "specint", "mixed small irregular passes")
def gcc(scale):
    k = KernelBuilder("gcc")
    n = scaled(160, scale, minimum=32)
    opcodes = k.array("opcodes", idata("gcc", n, low=0, high=9))
    operands = k.array("operands", idata("gcc", n, low=0, high=63,
                                         salt=1))
    folded = k.array("folded", n)
    live = k.array("live", 64)
    with k.function("main"):
        # Constant-fold pass: multiway biased dispatch.
        with k.loop(n) as i:
            with k.temps():
                op = k.ld(opcodes, i)
                val = k.ld(operands, i)
                is_add = k.slt(op, 4)       # common

                def fold_add():
                    k.st(folded, i, k.add(val, 1))

                def other():
                    is_mul = k.slt(op, 7)

                    def fold_mul():
                        k.st(folded, i, k.mul(val, 2))

                    def fold_misc():
                        k.st(folded, i, k.xor(val, 21))

                    k.if_(is_mul, fold_mul, fold_misc)

                k.if_(is_add, fold_add, other)
        # Liveness update pass: scattered increments.
        with k.loop(n) as i:
            with k.temps():
                reg = k.ld(operands, i)
                cur = k.ld(k.const(live.base), reg)
                k.st(k.const(live.base), reg, k.add(cur, 1))
        k.halt()
    return k


@workload("458.sjeng", "specint", "board scan with attack tests")
def sjeng(scale):
    k = KernelBuilder("sjeng")
    board = 64
    passes = scaled(24, scale, minimum=6)
    squares = k.array("squares", idata("sjeng", board, low=0, high=12))
    attack = k.array("attack", idata("sjeng", board, low=0, high=1,
                                     salt=1))
    score_out = k.array("score_out", passes)
    with k.function("main"):
        with k.loop(passes) as p:
            score = k.var(0)
            with k.loop(board) as sq:
                with k.temps():
                    piece = k.ld(squares, sq)
                    occupied = k.slt(0, piece)

                    def then_fn():
                        att = k.ld(attack, sq)
                        threatened = k.seq(att, 1)

                        def inner_then():
                            k.set(score, k.sub(score, piece))

                        def inner_else():
                            k.set(score, k.add(score, piece))

                        k.if_(threatened, inner_then, inner_else)

                    k.if_(occupied, then_fn)
            k.st(score_out, p, score)
        k.halt()
    return k


@workload("473.astar", "specint", "grid expansion with open-list updates")
def astar(scale):
    k = KernelBuilder("astar")
    n = scaled(128, scale, minimum=32)
    width = 16
    gcost = k.array("gcost", idata("astar", n + width + 1,
                                   low=0, high=90))
    hcost = k.array("hcost", idata("astar", n + width + 1,
                                   low=0, high=90, salt=1))
    best = k.array("best", n)
    with k.function("main"):
        with k.loop(n) as c:
            with k.temps():
                here = k.add(k.ld(gcost, c), k.ld(hcost, c))
                right = k.add(k.ld(gcost, k.add(c, 1)),
                              k.ld(hcost, k.add(c, 1)))
                down = k.add(k.ld(gcost, k.add(c, width)),
                             k.ld(hcost, k.add(c, width)))
                cand = k.min_(right, down)
                improve = k.slt(cand, here)   # unpredictable

                def then_fn():
                    k.st(best, c, cand)

                def else_fn():
                    k.st(best, c, here)

                k.if_(improve, then_fn, else_fn)
        k.halt()
    return k


@workload("456.hmmer", "specint", "P7Viterbi DP row (max-add chains)")
def hmmer(scale):
    k = KernelBuilder("hmmer")
    states = scaled(64, scale, minimum=16)
    rows = 12
    match = k.array("match", idata("hmmer", rows * states,
                                   low=-10, high=10))
    mmx = k.array("mmx", [0] * (states + 1))
    imx = k.array("imx", [0] * (states + 1))
    with k.function("main"):
        with k.loop(rows) as r:
            mbase = k.mul(r, states)
            with k.loop(states) as s:
                with k.temps():
                    prev_m = k.ld(k.const(mmx.base), s)
                    prev_i = k.ld(k.const(imx.base), s)
                    e = k.ld(k.const(match.base), k.add(mbase, s))
                    best = k.max_(k.add(prev_m, e),
                                  k.add(prev_i, e))
                    k.st(k.const(mmx.base), k.add(s, 1), best)
                    k.st(k.const(imx.base), k.add(s, 1),
                         k.max_(best, prev_i))
        k.halt()
    return k


@workload("445.gobmk", "specint", "Go pattern matching on board")
def gobmk(scale):
    k = KernelBuilder("gobmk")
    board = 81
    patterns = scaled(12, scale, minimum=4)
    stones = k.array("stones", idata("gobmk", board + 10,
                                     low=0, high=2))
    pat = k.array("pat", idata("gobmk", patterns * 4, low=0, high=2,
                               salt=1))
    matches = k.array("matches", patterns)
    with k.function("main"):
        with k.loop(patterns) as p:
            pbase = k.mul(p, 4)
            count = k.var(0)
            with k.loop(board - 10) as sq:
                with k.temps():
                    ok = k.var(1)
                    for d, off in enumerate((0, 1, 9, 10)):
                        s = k.ld(k.const(stones.base), k.add(sq, off))
                        want = k.ld(k.const(pat.base), k.add(pbase, d))
                        k.set(ok, k.and_(ok, k.seq(s, want)))
                    hit = k.seq(ok, 1)   # rare

                    def then_fn():
                        k.set(count, k.add(count, 1))

                    k.if_(hit, then_fn)
            k.st(matches, p, count)
        k.halt()
    return k


@workload("464.h264ref", "specint", "motion SAD + mode decision phases")
def h264ref(scale):
    k = KernelBuilder("h264ref")
    mbs = scaled(10, scale, minimum=3)
    mb = 16
    cur = k.array("cur", fdata("h264ref", mbs * mb, low=0.0, high=255.0))
    ref = k.array("ref", fdata("h264ref", mbs * mb + 8,
                               low=0.0, high=255.0, salt=1))
    sads = k.array("sads", mbs * 8)
    modes = k.array("modes", mbs)
    bits = k.array("bits", idata("h264ref", mbs * mb, low=0, high=7,
                                 salt=2))
    stream_out = k.array("stream_out", mbs * mb)
    with k.function("main"):
        # Phase 1: dense SAD search (very data parallel).
        with k.loop(mbs) as m:
            base = k.mul(m, mb)
            with k.loop(8) as cand:
                acc = k.var(0.0)
                with k.loop(mb) as x:
                    with k.temps():
                        c = k.ld(k.const(cur.base), k.add(base, x))
                        r = k.ld(k.const(ref.base),
                                 k.add(k.add(base, x), cand))
                        d = k.fsub(c, r)
                        k.set(acc, k.fadd(acc,
                                          k.fmax(d, k.fsub(0.0, d))))
                k.st(k.const(sads.base), k.add(k.mul(m, 8), cand), acc)
        # Phase 2: mode decision (branchy, data-dependent).
        with k.loop(mbs) as m:
            with k.temps():
                sbase = k.mul(m, 8)
                best = k.var(1e30)
                arg = k.var(0)
                with k.loop(8) as cand:
                    with k.temps():
                        s = k.ld(k.const(sads.base), k.add(sbase, cand))
                        better = k.fslt(s, best)

                        def then_fn():
                            k.set(best, k.fmin(best, s))
                            k.set(arg, k.add(cand, 0))

                        k.if_(better, then_fn)
                k.st(modes, m, arg)
        # Phase 3: CAVLC-ish serial bit packing (irregular).
        pos = k.var(0)
        with k.loop(mbs * mb) as i:
            with k.temps():
                b = k.ld(bits, i)
                long_code = k.slt(5, b)   # rare

                def then_fn():
                    k.st(stream_out, pos, k.add(b, 8))
                    k.set(pos, k.add(pos, 2))

                def else_fn():
                    k.st(stream_out, pos, b)
                    k.set(pos, k.add(pos, 1))

                k.if_(long_code, then_fn, else_fn)
        k.halt()
    return k
