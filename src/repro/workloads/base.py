"""Workload registry and helpers."""

import random
import zlib

#: suite name -> paper workload category (Fig. 11 grouping).
SUITE_CATEGORY = {
    "tpt": "regular",
    "parboil": "regular",
    "mediabench": "semiregular",
    "tpch": "semiregular",
    "specfp": "semiregular",
    "specint": "irregular",
}

#: Global registry: name -> Workload.
WORKLOADS = {}


class Workload:
    """One benchmark: a kernel-builder factory plus metadata."""

    def __init__(self, name, suite, description, factory, scale=1.0):
        if suite not in SUITE_CATEGORY:
            raise ValueError(f"unknown suite {suite!r}")
        self.name = name
        self.suite = suite
        self.description = description
        self.factory = factory
        self.scale = scale

    @property
    def category(self):
        return SUITE_CATEGORY[self.suite]

    def build(self, scale=None):
        """Build (program, memory) at *scale* (1.0 = default size)."""
        from repro.obs import span
        with span("workload.build", benchmark=self.name,
                  scale=scale if scale is not None else self.scale):
            builder = self.factory(
                scale if scale is not None else self.scale)
            return builder.build()

    def construct_tdg(self, scale=None, max_instructions=4_000_000,
                      source_core=None):
        """Build, run the simulator, and return the TDG.

        *source_core* (a :class:`~repro.core_model.config.CoreConfig`
        or preset name) sizes the trace-annotation models for the
        machine the trace is nominally recorded on — currently the
        branch predictor (:func:`repro.sim.branch.predictor_for_core`).
        ``None`` keeps the default models, byte-identical to the
        historical trace.
        """
        from repro.tdg.constructor import construct_tdg
        predictor = None
        if source_core is not None:
            from repro.core_model import core_by_name
            from repro.sim.branch import predictor_for_core
            config = core_by_name(source_core) \
                if isinstance(source_core, str) else source_core
            predictor = predictor_for_core(config)
        program, memory = self.build(scale)
        return construct_tdg(program, memory,
                             max_instructions=max_instructions,
                             predictor=predictor)

    def __repr__(self):
        return f"<Workload {self.name} ({self.suite})>"


def workload(name, suite, description):
    """Decorator registering a kernel factory.

    The factory receives a *scale* float and returns a KernelBuilder
    (not yet built).
    """
    def decorate(factory):
        if name in WORKLOADS:
            raise ValueError(f"duplicate workload {name!r}")
        WORKLOADS[name] = Workload(name, suite, description, factory)
        return factory
    return decorate


def by_suite(suite):
    return [w for w in WORKLOADS.values() if w.suite == suite]


def by_category(category):
    return [w for w in WORKLOADS.values() if w.category == category]


def all_names():
    return sorted(WORKLOADS)


def rng(name, salt=0):
    """Deterministic per-workload random source (stable across runs)."""
    return random.Random(zlib.crc32(f"{name}:{salt}".encode()))


def fdata(name, count, low=0.0, high=10.0, salt=0):
    """Deterministic float array data."""
    source = rng(name, salt)
    return [source.uniform(low, high) for _ in range(count)]


def idata(name, count, low=0, high=100, salt=0):
    """Deterministic int array data."""
    source = rng(name, salt)
    return [source.randint(low, high) for _ in range(count)]


def scaled(base, scale, minimum=4, multiple=1):
    """Scale a size parameter, keeping it a positive multiple."""
    value = max(minimum, int(base * scale))
    if multiple > 1:
        value = max(multiple, (value // multiple) * multiple)
    return value
