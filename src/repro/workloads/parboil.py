"""Parboil-style scientific kernels (highly regular).

Each kernel keeps the memory/compute signature of its namesake:
dense (mm, stencil, nnw), strided (fft), gather-based (spmv), carried-
dependence DP (needle), and histogram (tpacf).
"""

from repro.programs.builder import KernelBuilder
from repro.workloads.base import workload, fdata, idata, rng, scaled


@workload("cutcp", "parboil", "cutoff Coulomb potential (biased branch + sqrt)")
def cutcp(scale):
    k = KernelBuilder("cutcp")
    points = scaled(48, scale, minimum=8)
    atoms = 24
    gx = k.array("gx", fdata("cutcp", points))
    gy = k.array("gy", fdata("cutcp", points, salt=1))
    ax = k.array("ax", fdata("cutcp", atoms, salt=2))
    ay = k.array("ay", fdata("cutcp", atoms, salt=3))
    charge = k.array("charge", fdata("cutcp", atoms, low=0.1, high=1.0,
                                     salt=4))
    pot = k.array("pot", points)
    with k.function("main"):
        with k.loop(points) as p:
            x = k.ld(gx, p)
            y = k.ld(gy, p)
            acc = k.var(0.0)
            with k.loop(atoms) as a:
                with k.temps():
                    dx = k.fsub(k.ld(ax, a), x)
                    dy = k.fsub(k.ld(ay, a), y)
                    r2 = k.fadd(k.fmul(dx, dx), k.fmul(dy, dy))
                    near = k.fslt(r2, 40.0)   # biased mostly-taken

                    def then_fn():
                        q = k.ld(charge, a)
                        k.set(acc, k.fadd(
                            acc, k.fdiv(q, k.fadd(k.fsqrt(r2), 0.1))))

                    k.if_(near, then_fn)
            k.st(pot, p, acc)
        k.halt()
    return k


@workload("fft", "parboil", "radix-2 butterfly pass (strided access)")
def fft(scale):
    k = KernelBuilder("fft")
    n = scaled(256, scale, minimum=32, multiple=16)
    half = n // 2
    re = k.array("re", fdata("fft", n))
    im = k.array("im", fdata("fft", n, salt=1))
    wre = k.array("wre", fdata("fft", half, low=-1.0, high=1.0, salt=2))
    wim = k.array("wim", fdata("fft", half, low=-1.0, high=1.0, salt=3))
    with k.function("main"):
        # Three butterfly passes with stride-doubling access.
        for stage, stride in ((0, 1), (1, 2), (2, 4)):
            with k.loop(half) as i:
                with k.temps():
                    top = k.mul(i, 2)
                    bot = k.add(top, stride)
                    ar = k.ld(re, top)
                    ai = k.ld(im, top)
                    br = k.ld(re, bot)
                    bi = k.ld(im, bot)
                    tr = k.ld(wre, i)
                    ti = k.ld(wim, i)
                    xr = k.fsub(k.fmul(br, tr), k.fmul(bi, ti))
                    xi = k.fadd(k.fmul(br, ti), k.fmul(bi, tr))
                    k.st(re, top, k.fadd(ar, xr))
                    k.st(im, top, k.fadd(ai, xi))
                    k.st(re, bot, k.fsub(ar, xr))
                    k.st(im, bot, k.fsub(ai, xi))
        k.halt()
    return k


@workload("kmeans", "parboil", "nearest-centroid assignment (min-reduction)")
def kmeans(scale):
    k = KernelBuilder("kmeans")
    points = scaled(160, scale, minimum=16)
    clusters = 8
    px = k.array("px", fdata("kmeans", points))
    py = k.array("py", fdata("kmeans", points, salt=1))
    cx = k.array("cx", fdata("kmeans", clusters, salt=2))
    cy = k.array("cy", fdata("kmeans", clusters, salt=3))
    assign = k.array("assign", points)
    with k.function("main"):
        with k.loop(points) as p:
            x = k.ld(px, p)
            y = k.ld(py, p)
            best = k.var(1e30)
            best_c = k.var(0)
            with k.loop(clusters) as c:
                with k.temps():
                    dx = k.fsub(k.ld(cx, c), x)
                    dy = k.fsub(k.ld(cy, c), y)
                    d = k.fadd(k.fmul(dx, dx), k.fmul(dy, dy))
                    closer = k.fslt(d, best)

                    def then_fn():
                        k.set(best, k.fmin(best, d))
                        k.set(best_c, k.add(c, 0))

                    k.if_(closer, then_fn)
            k.st(assign, p, best_c)
        k.halt()
    return k


@workload("lbm", "parboil", "lattice-Boltzmann style 5-point update")
def lbm(scale):
    k = KernelBuilder("lbm")
    width = 32
    rows = scaled(16, scale, minimum=6)
    cells = (rows + 2) * width
    grid = k.array("grid", fdata("lbm", cells, low=0.0, high=1.0))
    out = k.array("out", cells)
    with k.function("main"):
        with k.loop(rows) as r:
            row = k.mul(k.add(r, 1), width)
            with k.loop(width - 2, start=1) as c:
                with k.temps():
                    center = k.add(row, c)
                    v0 = k.ld(k.const(grid.base), center)
                    v1 = k.ld(k.const(grid.base), k.sub(center, 1))
                    v2 = k.ld(k.const(grid.base), k.add(center, 1))
                    v3 = k.ld(k.const(grid.base), k.sub(center, width))
                    v4 = k.ld(k.const(grid.base), k.add(center, width))
                    flux = k.fadd(k.fadd(v1, v2), k.fadd(v3, v4))
                    relaxed = k.fadd(k.fmul(v0, 0.6),
                                     k.fmul(flux, 0.1))
                    k.st(k.const(out.base), center, relaxed)
        k.halt()
    return k


@workload("mm", "parboil", "dense matrix multiply (dot-product reduction)")
def mm(scale):
    k = KernelBuilder("mm")
    n = scaled(16, scale, minimum=6)
    a = k.array("a", fdata("mm", n * n))
    b = k.array("b", fdata("mm", n * n, salt=1))
    c = k.array("c", n * n)
    with k.function("main"):
        with k.loop(n) as i:
            row = k.mul(i, n)
            with k.loop(n) as j:
                acc = k.var(0.0)
                with k.loop(n) as x:
                    with k.temps():
                        av = k.ld(k.const(a.base), k.add(row, x))
                        bv = k.ld(k.const(b.base),
                                  k.add(k.mul(x, n), j))
                        k.set(acc, k.fadd(acc, k.fmul(av, bv)))
                k.st(k.const(c.base), k.add(row, j), acc)
        k.halt()
    return k


@workload("needle", "parboil", "Needleman-Wunsch DP (carried dependence)")
def needle(scale):
    k = KernelBuilder("needle")
    n = scaled(40, scale, minimum=10)
    width = n + 1
    score = k.array("score", [0.0] * (width * width))
    penalty = k.array("penalty",
                      idata("needle", n * n, low=-3, high=3))
    with k.function("main"):
        with k.loop(n) as i:
            row = k.mul(k.add(i, 1), width)
            prow = k.mul(i, width)
            pbase = k.mul(i, n)
            with k.loop(n) as j:
                with k.temps():
                    jj = k.add(j, 1)
                    diag = k.ld(k.const(score.base), k.add(prow, j))
                    up = k.ld(k.const(score.base), k.add(prow, jj))
                    left = k.ld(k.const(score.base), k.add(row, j))
                    p = k.ld(k.const(penalty.base), k.add(pbase, j))
                    best = k.fmax(k.fadd(diag, p),
                                  k.fmax(k.fsub(up, 1.0),
                                         k.fsub(left, 1.0)))
                    k.st(k.const(score.base), k.add(row, jj), best)
        k.halt()
    return k


@workload("nnw", "parboil", "neural-net layer: matvec + ReLU")
def nnw(scale):
    k = KernelBuilder("nnw")
    inputs = 32
    outputs = scaled(48, scale, minimum=8)
    x = k.array("x", fdata("nnw", inputs, low=-1.0, high=1.0))
    w = k.array("w", fdata("nnw", inputs * outputs, low=-1.0, high=1.0,
                           salt=1))
    y = k.array("y", outputs)
    with k.function("main"):
        with k.loop(outputs) as o:
            row = k.mul(o, inputs)
            acc = k.var(0.0)
            with k.loop(inputs) as i:
                with k.temps():
                    wv = k.ld(k.const(w.base), k.add(row, i))
                    xv = k.ld(x, i)
                    k.set(acc, k.fadd(acc, k.fmul(wv, xv)))
            k.st(y, o, k.fmax(acc, 0.0))
        k.halt()
    return k


@workload("spmv", "parboil", "sparse matrix-vector product (gather)")
def spmv(scale):
    k = KernelBuilder("spmv")
    rows = scaled(96, scale, minimum=12)
    nnz_per_row = 6
    source = rng("spmv")
    cols = []
    for _ in range(rows * nnz_per_row):
        cols.append(source.randrange(rows))
    vals = k.array("vals", fdata("spmv", rows * nnz_per_row))
    col_idx = k.array("col_idx", cols)
    vec = k.array("vec", fdata("spmv", rows, salt=1))
    out = k.array("out", rows)
    with k.function("main"):
        with k.loop(rows) as r:
            base = k.mul(r, nnz_per_row)
            acc = k.var(0.0)
            with k.loop(nnz_per_row) as e:
                with k.temps():
                    off = k.add(base, e)
                    v = k.ld(k.const(vals.base), off)
                    c = k.ld(k.const(col_idx.base), off)
                    xv = k.ld(k.const(vec.base), c)     # gather
                    k.set(acc, k.fadd(acc, k.fmul(v, xv)))
            k.st(out, r, acc)
        k.halt()
    return k


@workload("stencil", "parboil", "1D 3-point Jacobi sweep (vectorizable)")
def stencil(scale):
    k = KernelBuilder("stencil")
    n = scaled(512, scale, minimum=32, multiple=8)
    src = k.array("src", fdata("stencil", n + 2))
    dst = k.array("dst", n + 2)
    with k.function("main"):
        with k.loop(3):
            with k.loop(n) as i:
                with k.temps():
                    left = k.ld(src, i)
                    mid = k.ld(src, k.add(i, 1))
                    right = k.ld(src, k.add(i, 2))
                    blended = k.fmul(
                        k.fadd(k.fadd(left, right), mid), 0.3333)
                    k.st(dst, k.add(i, 1), blended)
        k.halt()
    return k


@workload("tpacf", "parboil", "angular-correlation histogram (scatter)")
def tpacf(scale):
    k = KernelBuilder("tpacf")
    pairs = scaled(384, scale, minimum=32)
    bins = 16
    angles = k.array("angles",
                     fdata("tpacf", pairs, low=0.0, high=16.0))
    hist = k.array("hist", [0] * bins)
    with k.function("main"):
        with k.loop(pairs) as p:
            with k.temps():
                a = k.ld(angles, p)
                idx = k.min_(k.fcvt(a), bins - 1)   # truncate to bin
                count = k.ld(k.const(hist.base), idx)
                k.st(k.const(hist.base), idx, k.add(count, 1))
        k.halt()
    return k
