"""TPC-H-style query kernels (semi-regular database behavior).

Q1 is a scan with predicated aggregation (SIMD-with-masks friendly);
Q2 is a selective join probe: indirect lookups plus data-dependent
branching (irregular memory, modest bias).
"""

from repro.programs.builder import KernelBuilder
from repro.workloads.base import workload, fdata, idata, rng, scaled


@workload("tpch1", "tpch", "Q1: scan + predicated aggregation")
def tpch1(scale):
    k = KernelBuilder("tpch1")
    rows = scaled(512, scale, minimum=64, multiple=8)
    qty = k.array("qty", fdata("tpch1", rows, low=1.0, high=50.0))
    price = k.array("price", fdata("tpch1", rows, low=1.0, high=100.0,
                                   salt=1))
    disc = k.array("disc", fdata("tpch1", rows, low=0.0, high=0.1,
                                 salt=2))
    flags = k.array("flags", idata("tpch1", rows, low=0, high=3, salt=3))
    sums = k.array("sums", 4)
    with k.function("main"):
        sum_qty = k.var(0.0)
        sum_base = k.var(0.0)
        sum_disc = k.var(0.0)
        count = k.var(0.0)
        with k.loop(rows) as i:
            with k.temps():
                f = k.ld(flags, i)
                keep = k.slt(f, 3)     # ~75% selectivity

                def then_fn():
                    q = k.ld(qty, i)
                    p = k.ld(price, i)
                    d = k.ld(disc, i)
                    k.set(sum_qty, k.fadd(sum_qty, q))
                    k.set(sum_base, k.fadd(sum_base, k.fmul(q, p)))
                    k.set(sum_disc, k.fadd(
                        sum_disc, k.fmul(k.fmul(q, p), k.fsub(1.0, d))))
                    k.set(count, k.fadd(count, 1.0))

                k.if_(keep, then_fn)
        k.st(sums, 0, sum_qty)
        k.st(sums, 1, sum_base)
        k.st(sums, 2, sum_disc)
        k.st(sums, 3, count)
        k.halt()
    return k


@workload("tpch2", "tpch", "Q2: selective join probe (indirect lookups)")
def tpch2(scale):
    k = KernelBuilder("tpch2")
    parts = scaled(256, scale, minimum=32)
    suppliers = 64
    source = rng("tpch2")
    supp_of = k.array(
        "supp_of", [source.randrange(suppliers) for _ in range(parts)])
    cost = k.array("cost", fdata("tpch2", parts, low=1.0, high=9.0))
    supp_region = k.array(
        "supp_region", idata("tpch2", suppliers, low=0, high=4, salt=1))
    best_cost = k.array("best_cost", 1)
    best_part = k.array("best_part", 1)
    with k.function("main"):
        best = k.var(1e30)
        best_idx = k.var(-1)
        with k.loop(parts) as p:
            with k.temps():
                s = k.ld(supp_of, p)                       # probe
                region = k.ld(k.const(supp_region.base), s)  # gather
                in_region = k.seq(region, 2)   # ~20% selectivity

                def then_fn():
                    c = k.ld(cost, p)
                    cheaper = k.fslt(c, best)

                    def inner_then():
                        k.set(best, k.fmin(best, c))
                        k.set(best_idx, k.add(p, 0))

                    k.if_(cheaper, inner_then)

                k.if_(in_region, then_fn)
        k.st(best_cost, 0, best)
        k.st(best_part, 0, best_idx)
        k.halt()
    return k
