"""Workload suites (paper Table 3).

Each benchmark is a synthetic kernel written against the mini ISA that
reproduces the *behavioral essence* of its namesake: the data-parallel
TPT and Parboil codes, multi-phase Mediabench codecs, TPC-H query
kernels, SPECfp numeric loops, and irregular SPECint programs.  The
suites keep the paper's workload categories:

- regular: TPT + Parboil
- semi-regular: Mediabench + TPCH + SPECfp
- irregular: SPECint
"""

from repro.workloads.base import (
    Workload, WORKLOADS, workload, by_suite, by_category, all_names,
    SUITE_CATEGORY,
)

# Importing the suite modules populates the registry.
from repro.workloads import tpt            # noqa: F401
from repro.workloads import parboil        # noqa: F401
from repro.workloads import mediabench     # noqa: F401
from repro.workloads import tpch           # noqa: F401
from repro.workloads import specfp         # noqa: F401
from repro.workloads import specint        # noqa: F401

__all__ = [
    "Workload",
    "WORKLOADS",
    "workload",
    "by_suite",
    "by_category",
    "all_names",
    "SUITE_CATEGORY",
]
