"""Dark-silicon budget exploration over ExoCore tiles.

The paper motivates ExoCore with the dark-silicon argument: "certain
portions of the core would go unused at any given time — now the
tradeoffs are more plausible."  This module quantifies that: under a
fixed die area and TDP, specialized tiles that are individually larger
(more silicon idle at any instant) can still win on delivered
throughput because each active tile does more with less power.
"""

from repro.dse.sweep import ALL_BSAS
from repro.system.chip import Chip, UNCORE_AREA, build_tile


class BudgetPoint:
    """One (tile type, chip) evaluation under a budget."""

    def __init__(self, tile, chip, powered, throughput, dark_fraction):
        self.tile = tile
        self.chip = chip
        self.powered = powered
        self.throughput = throughput
        self.dark_fraction = dark_fraction

    def __repr__(self):
        return (f"<BudgetPoint {self.tile.name} x{self.chip.count} "
                f"({self.powered} lit): tput={self.throughput:.1f} "
                f"dark={self.dark_fraction:.0%}>")


#: Tile types considered: each core alone, with SIMD, and as a full
#: ExoCore (a representative slice of the 64-point space).
DEFAULT_TILE_SUBSETS = ((), ("simd",), ALL_BSAS)


def explore_budgets(sweep, area_mm2, tdp_w,
                    core_names=("IO2", "OOO2", "OOO4", "OOO6"),
                    subsets=DEFAULT_TILE_SUBSETS):
    """Evaluate every tile type under (area, TDP); returns the list of
    :class:`BudgetPoint` sorted by delivered throughput."""
    points = []
    for core_name in core_names:
        for subset in subsets:
            tile = build_tile(sweep, core_name, subset)
            usable = area_mm2 - UNCORE_AREA
            count = int(usable // tile.area_mm2)
            if count < 1:
                continue
            chip = Chip(tile, count)
            powered = chip.max_powered_tiles(tdp_w)
            if powered < 1:
                continue
            throughput = chip.throughput(powered)
            dark = 1.0 - powered / count if count else 0.0
            points.append(BudgetPoint(tile, chip, powered, throughput,
                                      dark))
    points.sort(key=lambda p: -p.throughput)
    return points


def best_tile_under_budget(sweep, area_mm2, tdp_w, **kwargs):
    """The throughput-optimal tile type for the given budget."""
    points = explore_budgets(sweep, area_mm2, tdp_w, **kwargs)
    if not points:
        raise ValueError(
            f"no tile fits within {area_mm2}mm^2 / {tdp_w}W")
    return points[0]
