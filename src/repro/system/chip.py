"""Tile and chip models for ExoCore-enabled heterogeneous systems.

A :class:`Tile` is one ExoCore (a core config plus BSA subset) with
its measured per-workload performance/energy (taken from a design-
space sweep).  A :class:`Chip` replicates tiles under an area budget
and reports multiprogrammed throughput and average power — the
quantities the dark-silicon exploration trades off.
"""

from repro.core_model import core_by_name
from repro.dse.report import REFERENCE_CORE, geomean
from repro.energy.area import exocore_area

#: Nominal clock (GHz) used to convert pJ/cycle into watts.
NOMINAL_GHZ = 2.0

#: Uncore area charged per chip (shared L2 slice, NoC, IO), mm^2.
UNCORE_AREA = 6.0


class Tile:
    """One ExoCore tile: core + BSA subset + measured behavior."""

    def __init__(self, core_name, subset, rel_performance,
                 energy_per_work_pj, avg_power_w):
        self.core_name = core_name
        self.subset = tuple(subset)
        #: Geomean workload performance relative to the IO2 baseline.
        self.rel_performance = rel_performance
        #: Geomean energy per unit of work, pJ (IO2 baseline = its own).
        self.energy_per_work_pj = energy_per_work_pj
        #: Average power while running the workload mix, W.
        self.avg_power_w = avg_power_w
        self.area_mm2 = exocore_area(core_by_name(core_name), subset)

    @property
    def name(self):
        letters = "".join(b[0].upper() if b != "simd" else "S"
                          for b in self.subset)
        return f"{self.core_name}-{letters or '-'}"

    def __repr__(self):
        return (f"<Tile {self.name}: perf={self.rel_performance:.2f} "
                f"{self.area_mm2:.1f}mm2 {self.avg_power_w:.2f}W>")


def build_tile(sweep, core_name, subset):
    """Construct a Tile from sweep measurements.

    Power is derived from each benchmark's energy and cycle count at
    the nominal clock; performance and energy are geomeans across the
    sweep's workloads (the multiprogrammed mix).
    """
    perfs = []
    energies = []
    powers = []
    for record in sweep.benchmarks():
        ref_cycles, _ref_energy, _ = record.baseline[REFERENCE_CORE]
        summary = record.summary(core_name, subset)
        cycles = max(1, summary["cycles"])
        energy = summary["energy_pj"]
        perfs.append(ref_cycles / cycles)
        energies.append(energy)
        # P = E / t; t = cycles / f.
        seconds = cycles / (NOMINAL_GHZ * 1e9)
        powers.append(energy * 1e-12 / seconds if seconds else 0.0)
    return Tile(core_name, subset,
                rel_performance=geomean(perfs),
                energy_per_work_pj=geomean(energies),
                avg_power_w=sum(powers) / len(powers))


class Chip:
    """A chip: N copies of one tile type plus shared uncore.

    Throughput assumes an embarrassingly multiprogrammed mix (one
    independent workload instance per tile) with a shared-cache
    contention discount that grows with tile count.
    """

    #: Throughput discount per extra tile (shared L2 / NoC pressure).
    CONTENTION_PER_TILE = 0.015

    def __init__(self, tile, count):
        if count < 1:
            raise ValueError("a chip needs at least one tile")
        self.tile = tile
        self.count = count

    @property
    def area_mm2(self):
        return UNCORE_AREA + self.count * self.tile.area_mm2

    @property
    def peak_power_w(self):
        return 0.5 + self.count * self.tile.avg_power_w

    def throughput(self, powered_tiles=None):
        """Aggregate relative throughput with *powered_tiles* active
        (dark-silicon operation powers only a subset)."""
        active = self.count if powered_tiles is None \
            else min(powered_tiles, self.count)
        contention = max(0.5, 1.0 - self.CONTENTION_PER_TILE
                         * (active - 1))
        return active * self.tile.rel_performance * contention

    def power(self, powered_tiles=None):
        active = self.count if powered_tiles is None \
            else min(powered_tiles, self.count)
        return 0.5 + active * self.tile.avg_power_w

    def max_powered_tiles(self, tdp_w):
        """How many tiles the TDP allows to run simultaneously."""
        budget = tdp_w - 0.5
        if self.tile.avg_power_w <= 0:
            return self.count
        return max(0, min(self.count,
                          int(budget / self.tile.avg_power_w)))

    def __repr__(self):
        return (f"<Chip {self.count}x {self.tile.name}: "
                f"{self.area_mm2:.0f}mm2, {self.peak_power_w:.1f}W peak>")
