"""Chip-level composition of ExoCores (paper Figure 1).

The paper's opening figure shows an ExoCore-enabled heterogeneous
system: many ExoCore tiles behind a shared cache/NoC, justified by the
dark-silicon argument ("prior to the advent of dark silicon, such a
design would not have been sensible").  This package provides that
chip-level layer:

- :mod:`repro.system.chip` — tile and chip models: compose ExoCore
  tiles under area and TDP budgets, with multiprogrammed throughput
  and energy metrics.
- :mod:`repro.system.darksilicon` — the budget exploration: for a
  fixed die area and power envelope, which ExoCore configuration
  maximizes throughput, and how much silicon must stay dark.
"""

from repro.system.chip import Tile, Chip, build_tile
from repro.system.darksilicon import (
    BudgetPoint, explore_budgets, best_tile_under_budget,
)

__all__ = [
    "Tile",
    "Chip",
    "build_tile",
    "BudgetPoint",
    "explore_budgets",
    "best_tile_under_budget",
]
