"""Opcode definitions and static classification for the mini ISA.

Each opcode carries a functional-unit class (used for structural-hazard
modeling and energy accounting) and a nominal execute latency.  Vector
opcodes mirror their scalar counterparts; they are never produced by the
workloads directly — the SIMD TDG transform introduces them.
"""

import enum


class Opcode(enum.Enum):
    """All operations understood by the interpreter and timing models."""

    # Integer ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    LI = "li"            # load immediate
    SLT = "slt"          # set if less-than
    SEQ = "seq"          # set if equal
    MIN = "min"
    MAX = "max"
    # Integer multiply / divide
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMA = "fma"          # produced by the fma transform, not by workloads
    FSQRT = "fsqrt"
    FMIN = "fmin"
    FMAX = "fmax"
    FCVT = "fcvt"        # int <-> float convert
    FSLT = "fslt"        # fp compare: set if less-than
    # Memory
    LD = "ld"
    ST = "st"
    # Control
    BR = "br"            # conditional branch on register != 0
    JMP = "jmp"          # unconditional jump
    CALL = "call"
    RET = "ret"
    HALT = "halt"
    NOP = "nop"
    # Vector forms (introduced by the SIMD transform)
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VAND = "vand"
    VOR = "vor"
    VXOR = "vxor"
    VSHL = "vshl"
    VSHR = "vshr"
    VMIN = "vmin"
    VMAX = "vmax"
    VSLT = "vslt"
    VSEQ = "vseq"
    VFADD = "vfadd"
    VFSUB = "vfsub"
    VFMUL = "vfmul"
    VFDIV = "vfdiv"
    VFMIN = "vfmin"
    VFMAX = "vfmax"
    VFSLT = "vfslt"
    VLD = "vld"          # contiguous vector load
    VST = "vst"          # contiguous vector store
    VBLEND = "vblend"    # masked merge of two vectors
    VMOVMSK = "vmovmsk"  # reduce predicate vector to scalar mask
    # Accelerator plumbing (introduced by DP-CGRA / NS-DF / Trace-P transforms)
    CFG = "cfg"          # load an accelerator configuration
    SEND = "send"        # core -> accelerator operand transfer
    RECV = "recv"        # accelerator -> core operand transfer
    CFU = "cfu"          # compound functional-unit operation
    SWITCH = "switch"    # dataflow control-steering instruction


class OpClass(enum.Enum):
    """Functional-unit class, used for port/FU contention and energy."""

    ALU = "alu"
    MUL = "mul"          # integer mul/div pipe
    FP = "fp"
    FP_DIV = "fp_div"
    MEM_LD = "mem_ld"
    MEM_ST = "mem_st"
    BRANCH = "branch"
    CONTROL = "control"  # jmp/call/ret/halt/nop
    ACCEL = "accel"


_SCALAR_TO_VECTOR = {
    Opcode.ADD: Opcode.VADD,
    Opcode.SUB: Opcode.VSUB,
    Opcode.MUL: Opcode.VMUL,
    Opcode.AND: Opcode.VAND,
    Opcode.OR: Opcode.VOR,
    Opcode.XOR: Opcode.VXOR,
    Opcode.SHL: Opcode.VSHL,
    Opcode.SHR: Opcode.VSHR,
    Opcode.MIN: Opcode.VMIN,
    Opcode.MAX: Opcode.VMAX,
    Opcode.SLT: Opcode.VSLT,
    Opcode.SEQ: Opcode.VSEQ,
    Opcode.FADD: Opcode.VFADD,
    Opcode.FSUB: Opcode.VFSUB,
    Opcode.FMUL: Opcode.VFMUL,
    Opcode.FDIV: Opcode.VFDIV,
    Opcode.FMIN: Opcode.VFMIN,
    Opcode.FMAX: Opcode.VFMAX,
    Opcode.FSLT: Opcode.VFSLT,
    Opcode.LD: Opcode.VLD,
    Opcode.ST: Opcode.VST,
}
_VECTOR_TO_SCALAR = {v: k for k, v in _SCALAR_TO_VECTOR.items()}

_OP_CLASS = {
    Opcode.ADD: OpClass.ALU, Opcode.SUB: OpClass.ALU, Opcode.AND: OpClass.ALU,
    Opcode.OR: OpClass.ALU, Opcode.XOR: OpClass.ALU, Opcode.SHL: OpClass.ALU,
    Opcode.SHR: OpClass.ALU, Opcode.MOV: OpClass.ALU, Opcode.LI: OpClass.ALU,
    Opcode.SLT: OpClass.ALU, Opcode.SEQ: OpClass.ALU, Opcode.MIN: OpClass.ALU,
    Opcode.MAX: OpClass.ALU,
    Opcode.MUL: OpClass.MUL, Opcode.DIV: OpClass.MUL, Opcode.REM: OpClass.MUL,
    Opcode.FADD: OpClass.FP, Opcode.FSUB: OpClass.FP, Opcode.FMUL: OpClass.FP,
    Opcode.FMA: OpClass.FP, Opcode.FMIN: OpClass.FP, Opcode.FMAX: OpClass.FP,
    Opcode.FCVT: OpClass.FP, Opcode.FSLT: OpClass.FP,
    Opcode.FDIV: OpClass.FP_DIV, Opcode.FSQRT: OpClass.FP_DIV,
    Opcode.LD: OpClass.MEM_LD, Opcode.ST: OpClass.MEM_ST,
    Opcode.BR: OpClass.BRANCH,
    Opcode.JMP: OpClass.CONTROL, Opcode.CALL: OpClass.CONTROL,
    Opcode.RET: OpClass.CONTROL, Opcode.HALT: OpClass.CONTROL,
    Opcode.NOP: OpClass.CONTROL,
    Opcode.VLD: OpClass.MEM_LD, Opcode.VST: OpClass.MEM_ST,
    Opcode.VBLEND: OpClass.ALU, Opcode.VMOVMSK: OpClass.ALU,
    Opcode.CFG: OpClass.ACCEL, Opcode.SEND: OpClass.ACCEL,
    Opcode.RECV: OpClass.ACCEL, Opcode.CFU: OpClass.ACCEL,
    Opcode.SWITCH: OpClass.ACCEL,
}
# Vector arithmetic inherits its scalar op class.
for _s, _v in _SCALAR_TO_VECTOR.items():
    _OP_CLASS.setdefault(_v, _OP_CLASS[_s])

#: Nominal execute latency per opcode, in cycles (cache latency overrides
#: these for memory ops at trace-generation time).
FU_LATENCY = {
    Opcode.MUL: 3, Opcode.DIV: 18, Opcode.REM: 18,
    Opcode.FADD: 3, Opcode.FSUB: 3, Opcode.FMUL: 4, Opcode.FMA: 4,
    Opcode.FDIV: 16, Opcode.FSQRT: 20, Opcode.FCVT: 2,
    Opcode.FMIN: 2, Opcode.FMAX: 2, Opcode.FSLT: 2,
    Opcode.CFU: 2,
}
for _s, _v in _SCALAR_TO_VECTOR.items():
    if _s in FU_LATENCY:
        FU_LATENCY[_v] = FU_LATENCY[_s]


def op_class(opcode):
    """Return the :class:`OpClass` of *opcode*."""
    return _OP_CLASS[opcode]


def fu_latency(opcode):
    """Nominal execute latency of *opcode* (1 cycle unless listed)."""
    return FU_LATENCY.get(opcode, 1)


def is_branch(opcode):
    """True for conditional branches (the only predicted control ops)."""
    return opcode is Opcode.BR


def is_control(opcode):
    """True for any control-flow opcode, conditional or not."""
    return _OP_CLASS[opcode] in (OpClass.BRANCH, OpClass.CONTROL) and (
        opcode is not Opcode.NOP
    )


def is_memory(opcode):
    return _OP_CLASS[opcode] in (OpClass.MEM_LD, OpClass.MEM_ST)


def is_load(opcode):
    return _OP_CLASS[opcode] is OpClass.MEM_LD


def is_store(opcode):
    return _OP_CLASS[opcode] is OpClass.MEM_ST


def is_compute(opcode):
    """True for value-producing ALU/MUL/FP work (not memory or control)."""
    return _OP_CLASS[opcode] in (
        OpClass.ALU, OpClass.MUL, OpClass.FP, OpClass.FP_DIV,
    )


def is_fp(opcode):
    return _OP_CLASS[opcode] in (OpClass.FP, OpClass.FP_DIV)


def is_vector(opcode):
    return opcode in _VECTOR_TO_SCALAR or opcode in (
        Opcode.VBLEND, Opcode.VMOVMSK,
    )


def vector_opcode_for(opcode):
    """Vector twin of a scalar opcode, or None if not vectorizable."""
    return _SCALAR_TO_VECTOR.get(opcode)


def scalar_opcode_for(opcode):
    """Scalar twin of a vector opcode, or None."""
    return _VECTOR_TO_SCALAR.get(opcode)
