"""Register-file conventions for the mini ISA.

A single flat namespace of 64 general registers holds both integer and
floating-point values (the interpreter is dynamically typed; the opcode
determines the operation semantics).  A handful of registers have fixed
roles mirroring common RISC ABIs.
"""

#: Number of architectural registers.
NUM_REGS = 64

#: r0 always reads as integer zero; writes are ignored.
REG_ZERO = 0

#: Stack pointer (used by call/ret in workloads with functions).
REG_SP = 1

#: Return-address register written by ``call``.
REG_RA = 2


def reg_name(index):
    """Human-readable name, e.g. ``r7``."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_reg(text):
    """Parse ``rN`` back into an index.  Raises ValueError on bad input."""
    text = text.strip()
    if not text.startswith("r"):
        raise ValueError(f"not a register: {text!r}")
    index = int(text[1:])
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {text!r}")
    return index
