"""Static instruction representation.

An :class:`Instruction` is one static operation inside a basic block.
Memory operations use base+offset addressing (``ld rd, [ra + imm]``).
Conditional branches test a register against zero and name their taken
target by label; the fall-through successor is the next block in layout
order.
"""

from repro.isa.opcodes import (
    Opcode,
    is_branch,
    is_load,
    is_memory,
    is_store,
    op_class,
    fu_latency,
)
from repro.isa.registers import NUM_REGS, reg_name


class Instruction:
    """One static instruction.

    Parameters
    ----------
    opcode:
        The :class:`~repro.isa.opcodes.Opcode`.
    dest:
        Destination register index, or None for stores/branches/etc.
    srcs:
        Tuple of source register indices.
    imm:
        Immediate operand (address offset for memory ops, literal for
        ``li``/shifts, branch target label for control ops).
    target:
        Label of the taken successor for ``br``/``jmp``/``call``.
    """

    __slots__ = ("opcode", "dest", "srcs", "imm", "target",
                 "uid", "block", "index")

    def __init__(self, opcode, dest=None, srcs=(), imm=None, target=None):
        if not isinstance(opcode, Opcode):
            raise TypeError(f"opcode must be an Opcode, got {opcode!r}")
        self.opcode = opcode
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.target = target
        # Filled in when the instruction is attached to a program.
        self.uid = None        # program-unique static id
        self.block = None      # owning BasicBlock
        self.index = None      # position within the block
        self._validate()

    def _validate(self):
        for reg in self.srcs:
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"bad source register {reg}")
        if self.dest is not None and not 0 <= self.dest < NUM_REGS:
            raise ValueError(f"bad destination register {self.dest}")
        if is_branch(self.opcode) and self.target is None:
            raise ValueError("br requires a target label")
        if self.opcode in (Opcode.JMP, Opcode.CALL) and self.target is None:
            raise ValueError(f"{self.opcode.value} requires a target label")
        if is_memory(self.opcode):
            if not self.srcs:
                raise ValueError("memory op needs a base-address register")
            if is_load(self.opcode) and self.dest is None:
                raise ValueError("load needs a destination register")

    # -- classification passthroughs ------------------------------------
    @property
    def op_class(self):
        return op_class(self.opcode)

    @property
    def latency(self):
        return fu_latency(self.opcode)

    @property
    def is_branch(self):
        return is_branch(self.opcode)

    @property
    def is_load(self):
        return is_load(self.opcode)

    @property
    def is_store(self):
        return is_store(self.opcode)

    @property
    def is_memory(self):
        return is_memory(self.opcode)

    # -- formatting ------------------------------------------------------
    def __repr__(self):
        return f"<Instruction {self}>"

    def __str__(self):
        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        if self.is_memory:
            base = reg_name(self.srcs[0])
            offset = self.imm or 0
            operands.append(f"[{base}+{offset}]")
            operands.extend(reg_name(s) for s in self.srcs[1:])
        else:
            operands.extend(reg_name(s) for s in self.srcs)
            if self.imm is not None:
                operands.append(str(self.imm))
        if self.target is not None:
            operands.append(self.target)
        if operands:
            parts.append(" " + ", ".join(operands))
        return "".join(parts)
