"""Mini RISC instruction set used by the trace generator.

The paper's Prism framework consumed gem5 traces of real ISAs.  We
substitute a small load/store RISC ISA that is rich enough to express the
paper's behavior classes (data-parallel loops, separable access/execute
code, biased control, irregular pointer chasing) while staying easy to
interpret and analyze.

Public API:

- :class:`~repro.isa.opcodes.Opcode` and its classification helpers
- :class:`~repro.isa.instruction.Instruction`
- :data:`~repro.isa.registers.NUM_REGS` and register helpers
"""

from repro.isa.opcodes import (
    Opcode,
    OpClass,
    FU_LATENCY,
    op_class,
    is_branch,
    is_memory,
    is_load,
    is_store,
    is_compute,
    is_fp,
    is_vector,
    vector_opcode_for,
    scalar_opcode_for,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_ZERO,
    REG_SP,
    REG_RA,
    reg_name,
    parse_reg,
)
from repro.isa.instruction import Instruction

__all__ = [
    "Opcode",
    "OpClass",
    "FU_LATENCY",
    "op_class",
    "is_branch",
    "is_memory",
    "is_load",
    "is_store",
    "is_compute",
    "is_fp",
    "is_vector",
    "vector_opcode_for",
    "scalar_opcode_for",
    "NUM_REGS",
    "REG_ZERO",
    "REG_SP",
    "REG_RA",
    "reg_name",
    "parse_reg",
    "Instruction",
]
