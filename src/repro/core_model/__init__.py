"""General-purpose-core configurations and helpers (paper Table 4)."""

from repro.core_model.config import (
    CoreConfig,
    IO2,
    OOO1,
    OOO2,
    OOO4,
    OOO6,
    OOO8,
    CORE_PRESETS,
    core_by_name,
)

__all__ = [
    "CoreConfig",
    "IO2",
    "OOO1",
    "OOO2",
    "OOO4",
    "OOO6",
    "OOO8",
    "CORE_PRESETS",
    "core_by_name",
]
