"""Core configurations, mirroring paper Table 4.

================  ====  =====  =====  =====
parameter         IO2   OOO2   OOO4   OOO6
================  ====  =====  =====  =====
width             2     2      4      6
ROB size          --    64     168    192
instr. window     --    32     48     52
D-cache ports     1     1      2      3
FUs (alu/mul/fp)  2/1/1 2/1/1  3/2/2  4/2/3
================  ====  =====  =====  =====

OOO1 and OOO8 exist for the paper's cross-validation experiment
(Table 1 rows "OOO8->1" / "OOO1->8"); they linearly extend the table.
All cores share the cache hierarchy of section 4 and 256-bit SIMD
(4 x 64-bit lanes) when a SIMD BSA is attached.
"""

from repro.isa.opcodes import OpClass


class CoreConfig:
    """Micro-architectural parameters for one general-purpose core."""

    def __init__(self, name, width, rob_size=None, iq_size=None,
                 dcache_ports=1, alu_units=2, mul_units=1, fp_units=1,
                 in_order=False, decode_depth=None, branch_penalty=2,
                 vector_len=4):
        self.name = name
        self.width = width
        self.rob_size = rob_size
        self.iq_size = iq_size
        self.dcache_ports = dcache_ports
        self.alu_units = alu_units
        self.mul_units = mul_units
        self.fp_units = fp_units
        self.in_order = in_order
        # Front-end depth grows a little with machine complexity.
        if decode_depth is None:
            decode_depth = 3 if in_order else 4
        self.decode_depth = decode_depth
        self.branch_penalty = branch_penalty
        self.vector_len = vector_len
        if in_order and (rob_size or iq_size):
            raise ValueError("in-order cores have no ROB / issue queue")
        if not in_order and not (rob_size and iq_size):
            raise ValueError("OOO cores need rob_size and iq_size")

    def fu_count(self, op_class):
        """Number of units able to execute *op_class*."""
        if op_class in (OpClass.ALU, OpClass.BRANCH, OpClass.CONTROL):
            return self.alu_units
        if op_class is OpClass.MUL:
            return self.mul_units
        if op_class in (OpClass.FP, OpClass.FP_DIV):
            return self.fp_units
        if op_class in (OpClass.MEM_LD, OpClass.MEM_ST):
            return self.dcache_ports
        return self.alu_units  # ACCEL plumbing issues like ALU ops

    def __repr__(self):
        kind = "in-order" if self.in_order else "OOO"
        return f"<CoreConfig {self.name} ({kind}, width={self.width})>"


IO2 = CoreConfig("IO2", width=2, dcache_ports=1,
                 alu_units=2, mul_units=1, fp_units=1, in_order=True)

OOO1 = CoreConfig("OOO1", width=1, rob_size=32, iq_size=16,
                  dcache_ports=1, alu_units=1, mul_units=1, fp_units=1)

OOO2 = CoreConfig("OOO2", width=2, rob_size=64, iq_size=32,
                  dcache_ports=1, alu_units=2, mul_units=1, fp_units=1)

OOO4 = CoreConfig("OOO4", width=4, rob_size=168, iq_size=48,
                  dcache_ports=2, alu_units=3, mul_units=2, fp_units=2)

OOO6 = CoreConfig("OOO6", width=6, rob_size=192, iq_size=52,
                  dcache_ports=3, alu_units=4, mul_units=2, fp_units=3)

OOO8 = CoreConfig("OOO8", width=8, rob_size=256, iq_size=64,
                  dcache_ports=4, alu_units=6, mul_units=3, fp_units=4)

#: The paper's design-space cores (Table 4) plus validation extremes.
CORE_PRESETS = {c.name: c for c in (IO2, OOO1, OOO2, OOO4, OOO6, OOO8)}

#: The four cores used in the ExoCore design-space exploration.
DSE_CORES = ("IO2", "OOO2", "OOO4", "OOO6")


def core_by_name(name):
    """Look up a preset CoreConfig by name (e.g. ``"OOO2"``)."""
    try:
        return CORE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown core {name!r}; choose from {sorted(CORE_PRESETS)}"
        ) from None
