"""Functional interpreter producing annotated dynamic traces.

This plays gem5's role in the paper's Figure 2: it executes the program
(unmodified, scalar ISA) and emits one :class:`~repro.sim.trace.DynInst`
per executed instruction, annotated by the attached cache hierarchy and
branch predictor.
"""

import math

from repro.isa.opcodes import Opcode
from repro.sim.branch import GSharePredictor
from repro.sim.cache import CacheHierarchy
from repro.sim.trace import DynInst, Trace

#: Hard cap on memory image growth (words).
MAX_MEMORY_WORDS = 1 << 24


class ExecutionError(RuntimeError):
    """Raised on runtime faults (bad address, missing halt, ...)."""


class Interpreter:
    """Executes a Program, producing a Trace.

    Parameters
    ----------
    program:
        A finalized :class:`~repro.programs.ir.Program`.
    memory:
        Initial memory image (list of numbers); copied.
    caches / predictor:
        Annotation models; defaults are the paper's common hierarchy and
        a gshare predictor.
    """

    def __init__(self, program, memory=None, caches=None, predictor=None,
                 warm_icache=True):
        program.finalize()
        self.program = program
        self.memory = list(memory or [])
        self.caches = caches if caches is not None else CacheHierarchy()
        self.predictor = (predictor if predictor is not None
                          else GSharePredictor())
        self.registers = [0] * 64
        if warm_icache:
            self.caches.warm_instructions(len(program))

    def run(self, max_instructions=2_000_000):
        """Execute from main until halt; returns the Trace."""
        program = self.program
        memory = self.memory
        registers = self.registers
        caches = self.caches
        predictor = self.predictor

        dyn_instructions = []
        trace = Trace(program, dyn_instructions)
        last_writer = [None] * 64
        last_store = {}      # word address -> seq of last store

        function = program.main
        block = function.entry
        inst_index = 0
        call_stack = []
        trace.record_block(function.name, block.label)
        seq = 0

        while True:
            if seq >= max_instructions:
                raise ExecutionError(
                    f"{program.name}: exceeded {max_instructions} "
                    "instructions without halting"
                )
            if inst_index >= len(block.instructions):
                # Implicit fall-through to the next block in layout.
                next_index = block.index + 1
                if next_index >= len(function.blocks):
                    raise ExecutionError(
                        f"{program.name}: fell off the end of "
                        f"{function.name}"
                    )
                block = function.blocks[next_index]
                inst_index = 0
                trace.record_block(function.name, block.label)
                continue

            inst = block.instructions[inst_index]
            opcode = inst.opcode
            icache_lat, icache_level = caches.access_inst(inst.uid)
            dyn = DynInst(
                seq, inst, opcode,
                icache_lat=(icache_lat if icache_level != "l1" else 0),
            )

            # ---- control flow --------------------------------------
            if opcode is Opcode.HALT:
                dyn_instructions.append(dyn)
                break
            if opcode is Opcode.NOP:
                dyn_instructions.append(dyn)
                seq += 1
                inst_index += 1
                continue
            if opcode is Opcode.JMP:
                dyn_instructions.append(dyn)
                seq += 1
                block = function.block(inst.target)
                inst_index = 0
                trace.record_block(function.name, block.label)
                continue
            if opcode is Opcode.CALL:
                call_stack.append((function, block, inst_index + 1))
                dyn_instructions.append(dyn)
                seq += 1
                function = program.function(inst.target)
                block = function.entry
                inst_index = 0
                trace.record_block(function.name, block.label)
                continue
            if opcode is Opcode.RET:
                if not call_stack:
                    raise ExecutionError("ret with empty call stack")
                dyn_instructions.append(dyn)
                seq += 1
                function, block, inst_index = call_stack.pop()
                continue
            if opcode is Opcode.BR:
                cond_reg = inst.srcs[0]
                value = registers[cond_reg] if cond_reg else 0
                taken = bool(value)
                dep = last_writer[cond_reg] if cond_reg else None
                dyn.src_deps = (dep,) if dep is not None else ()
                dyn.taken = taken
                correct = predictor.predict_and_update(inst.uid, taken)
                dyn.mispredicted = not correct
                trace.record_branch(inst.uid, taken)
                dyn_instructions.append(dyn)
                seq += 1
                if taken:
                    block = function.block(inst.target)
                    inst_index = 0
                    trace.record_block(function.name, block.label)
                else:
                    inst_index += 1
                continue

            # ---- memory --------------------------------------------
            if opcode is Opcode.LD or opcode is Opcode.ST:
                base_reg = inst.srcs[0]
                addr = (registers[base_reg] if base_reg else 0) \
                    + (inst.imm or 0)
                if not isinstance(addr, int):
                    addr = int(addr)
                if not 0 <= addr < MAX_MEMORY_WORDS:
                    raise ExecutionError(
                        f"bad address {addr} at {inst} (seq {seq})"
                    )
                if addr >= len(memory):
                    memory.extend([0] * (addr + 1 - len(memory)))
                latency, level = caches.access_data(addr)
                dyn.mem_addr = addr
                dyn.mem_lat = latency
                dyn.mem_level = level
                deps = []
                if base_reg and last_writer[base_reg] is not None:
                    deps.append(last_writer[base_reg])
                if opcode is Opcode.LD:
                    if addr in last_store:
                        dyn.mem_dep = last_store[addr]
                    registers[inst.dest] = memory[addr]
                    if inst.dest:
                        last_writer[inst.dest] = seq
                else:
                    value_reg = inst.srcs[1]
                    if value_reg and last_writer[value_reg] is not None:
                        deps.append(last_writer[value_reg])
                    memory[addr] = registers[value_reg] if value_reg else 0
                    if addr in last_store:
                        dyn.mem_dep = last_store[addr]
                    last_store[addr] = seq
                dyn.src_deps = tuple(deps)
                dyn_instructions.append(dyn)
                seq += 1
                inst_index += 1
                continue

            # ---- register compute ----------------------------------
            srcs = inst.srcs
            deps = []
            for reg in srcs:
                if reg and last_writer[reg] is not None:
                    producer = last_writer[reg]
                    if producer not in deps:
                        deps.append(producer)
            dyn.src_deps = tuple(deps)
            result = self._evaluate(opcode, inst, registers)
            dest = inst.dest
            if dest is not None and dest != 0:
                registers[dest] = result
                last_writer[dest] = seq
            dyn_instructions.append(dyn)
            seq += 1
            inst_index += 1

        trace.memory = memory
        trace.registers = list(registers)
        return trace

    @staticmethod
    def _evaluate(opcode, inst, registers):
        """Compute the value of a register-compute instruction."""
        srcs = inst.srcs
        a = registers[srcs[0]] if srcs and srcs[0] else (0 if srcs else None)
        if len(srcs) >= 2:
            b = registers[srcs[1]] if srcs[1] else 0
        else:
            b = inst.imm

        if opcode is Opcode.LI:
            return inst.imm
        if opcode is Opcode.MOV:
            return a
        if opcode is Opcode.ADD:
            return a + b
        if opcode is Opcode.SUB:
            return a - b
        if opcode is Opcode.MUL:
            return a * b
        if opcode is Opcode.DIV:
            if b == 0:
                return 0
            return int(a / b) if isinstance(a, int) and isinstance(b, int) \
                else a / b
        if opcode is Opcode.REM:
            return 0 if b == 0 else int(a) % int(b)
        if opcode is Opcode.AND:
            return int(a) & int(b)
        if opcode is Opcode.OR:
            return int(a) | int(b)
        if opcode is Opcode.XOR:
            return int(a) ^ int(b)
        if opcode is Opcode.SHL:
            return int(a) << int(b)
        if opcode is Opcode.SHR:
            return int(a) >> int(b)
        if opcode is Opcode.SLT:
            return 1 if a < b else 0
        if opcode is Opcode.SEQ:
            return 1 if a == b else 0
        if opcode is Opcode.MIN:
            return min(a, b)
        if opcode is Opcode.MAX:
            return max(a, b)
        if opcode is Opcode.FADD:
            return float(a) + float(b)
        if opcode is Opcode.FSUB:
            return float(a) - float(b)
        if opcode is Opcode.FMUL:
            return float(a) * float(b)
        if opcode is Opcode.FDIV:
            return 0.0 if b == 0 else float(a) / float(b)
        if opcode is Opcode.FMIN:
            return min(float(a), float(b))
        if opcode is Opcode.FMAX:
            return max(float(a), float(b))
        if opcode is Opcode.FSLT:
            return 1 if float(a) < float(b) else 0
        if opcode is Opcode.FSQRT:
            return math.sqrt(abs(float(a)))
        if opcode is Opcode.FCVT:
            return int(a)   # float -> int truncation (int -> float is
            #                 implicit in the fp ops)
        raise ExecutionError(f"interpreter cannot execute {opcode}")


def run_program(program, memory=None, max_instructions=2_000_000,
                caches=None, predictor=None):
    """Convenience wrapper: interpret *program* and return its Trace."""
    from repro.obs import span

    interpreter = Interpreter(program, memory=memory, caches=caches,
                              predictor=predictor)
    with span("sim.interpret", program=program.name) as current:
        trace = interpreter.run(max_instructions=max_instructions)
        current.set(dynamic_instructions=len(trace))
    return trace
