"""Cycle-stepped out-of-order / in-order core simulator.

This is the *independent reference* the TDG validates against (the
role gem5 and published results play in paper Table 1 / Figure 5).  It
shares nothing with the TDG timing engine algorithmically: instead of
dependence-graph longest paths, it steps pipeline state cycle by
cycle — fetch, decode, dispatch into ROB/IQ, oldest-first select over
FUs and D-cache ports, writeback wakeup, in-order commit, and
redirect-on-mispredict.  Discrepancies between the two are genuine
modeling error, which is exactly what the validation experiment
measures.
"""

from repro.isa.opcodes import Opcode, OpClass

_UNPIPELINED = {
    Opcode.DIV, Opcode.REM, Opcode.FDIV, Opcode.FSQRT,
}

_FAR_FUTURE = float("inf")


class _InFlight:
    """Book-keeping for one in-flight instruction."""

    __slots__ = ("dyn", "index", "dispatch_ready", "completed",
                 "complete_cycle")

    def __init__(self, dyn, index, dispatch_ready):
        self.dyn = dyn
        self.index = index
        self.dispatch_ready = dispatch_ready  # cycle it exits decode
        self.completed = False
        self.complete_cycle = None


class CycleSimResult:
    def __init__(self, cycles, instructions):
        self.cycles = cycles
        self.instructions = instructions

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    def __repr__(self):
        return f"<CycleSim {self.cycles} cycles, IPC={self.ipc:.2f}>"


class CycleSimulator:
    """Trace-driven cycle-level core model."""

    def __init__(self, config):
        self.config = config

    def run(self, stream, max_cycles=50_000_000):
        """Simulate *stream*; returns a :class:`CycleSimResult`."""
        config = self.config
        width = config.width
        in_order = config.in_order
        decode_depth = config.decode_depth
        rob_cap = config.rob_size if not in_order \
            else width * (decode_depth + 4)
        iq_cap = config.iq_size if not in_order else width * 2
        fetch_buffer_cap = width * (decode_depth + 2)

        stream = [d for d in stream if d.accel is None]
        n = len(stream)
        if n == 0:
            return CycleSimResult(0, 0)

        complete_cycle = {}    # seq -> cycle its value is available
        pending = set()        # seqs in flight, not yet completed
        decode_queue = []      # fetched, still in the front end
        rob = []               # dispatched, program order
        iq = []                # waiting to issue (program order)
        fetch_index = 0
        committed = 0
        cycle = 0
        fetch_stall_until = 0
        fu_pool = {cls: [0] * config.fu_count(cls) for cls in OpClass}
        port_pool = [0] * config.dcache_ports

        def deps_ready(dyn):
            for dep in dyn.src_deps:
                if dep in pending:
                    return False
                t = complete_cycle.get(dep)
                if t is not None and t > cycle:
                    return False
            if dyn.mem_dep is not None and not dyn.static.is_store:
                if dyn.mem_dep in pending:
                    return False
                t = complete_cycle.get(dyn.mem_dep)
                if t is not None and t > cycle:
                    return False
            return True

        while committed < n and cycle < max_cycles:
            # ---- commit (oldest first, up to width) -----------------
            commits = 0
            while rob and commits < width:
                head = rob[0]
                if head.completed and head.complete_cycle < cycle:
                    rob.pop(0)
                    committed += 1
                    commits += 1
                else:
                    break

            # ---- issue ----------------------------------------------
            issued = 0
            for entry in list(iq):
                if issued >= width:
                    break
                dyn = entry.dyn
                can_issue = entry.dispatch_ready <= cycle \
                    and deps_ready(dyn)
                slot = None
                if can_issue:
                    latency = dyn.latency
                    occupancy = (latency if dyn.opcode in _UNPIPELINED
                                 else 1)
                    pool = (port_pool if dyn.mem_addr is not None
                            else fu_pool[dyn.op_class])
                    slot = min(range(len(pool)), key=pool.__getitem__)
                    if pool[slot] > cycle:
                        can_issue = False
                if not can_issue:
                    if in_order:
                        break   # stall issue at the oldest blocked op
                    continue
                pool[slot] = cycle + occupancy
                entry.completed = True
                entry.complete_cycle = cycle + latency
                complete_cycle[dyn.seq] = cycle + latency
                pending.discard(dyn.seq)
                iq.remove(entry)
                issued += 1
                if dyn.mispredicted:
                    fetch_stall_until = (cycle + latency
                                         + config.branch_penalty)

            # ---- dispatch (decode exit -> ROB + IQ) -----------------
            dispatched = 0
            while (decode_queue and dispatched < width
                   and len(rob) < rob_cap and len(iq) < iq_cap):
                entry = decode_queue[0]
                if entry.dispatch_ready > cycle:
                    break
                decode_queue.pop(0)
                entry.dispatch_ready = cycle + 1   # earliest issue
                rob.append(entry)
                iq.append(entry)
                pending.add(entry.dyn.seq)
                dispatched += 1

            # ---- fetch ----------------------------------------------
            fetched = 0
            while (fetched < width and fetch_index < n
                   and len(decode_queue) < fetch_buffer_cap
                   and cycle >= fetch_stall_until):
                dyn = stream[fetch_index]
                stall = dyn.icache_lat
                entry = _InFlight(dyn, fetch_index,
                                  cycle + stall + decode_depth)
                decode_queue.append(entry)
                fetch_index += 1
                fetched += 1
                if dyn.mispredicted:
                    # Front end chases the wrong path until redirect.
                    fetch_stall_until = _FAR_FUTURE
                    break
                if stall:
                    # I$ miss: the front end stalls until the line
                    # arrives.
                    fetch_stall_until = max(fetch_stall_until,
                                            cycle + stall)
                    break

            cycle += 1

        return CycleSimResult(cycle, n)
