"""Set-associative cache hierarchy with LRU replacement.

Memory is word-addressed; a line is 8 words (the analog of 64-byte
lines with 8-byte words).  The hierarchy mirrors the paper's common
configuration: 32KiB 2-way L1I, 64KiB L1D (4-cycle), 8-way 2MB L2
(22-cycle hit), plus a flat DRAM latency.
"""

#: Words per cache line throughout the system.
LINE_WORDS = 8


class CacheConfig:
    """Geometry + latency for one cache level."""

    def __init__(self, size_words, ways, hit_latency, name="cache"):
        if size_words % (ways * LINE_WORDS):
            raise ValueError("size must be a multiple of ways * line size")
        self.size_words = size_words
        self.ways = ways
        self.hit_latency = hit_latency
        self.name = name
        self.num_sets = size_words // (ways * LINE_WORDS)

    def __repr__(self):
        return (f"<CacheConfig {self.name}: {self.size_words}w "
                f"{self.ways}-way, {self.hit_latency}cyc>")


class Cache:
    """One level of set-associative, write-allocate, LRU cache."""

    def __init__(self, config):
        self.config = config
        # Each set is an ordered list of line tags; index 0 = MRU.
        self._sets = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, addr):
        """Access *addr* (word).  Returns True on hit; updates LRU and
        allocates on miss."""
        line = addr // LINE_WORDS
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.ways:
            ways.pop()
        return False

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self):
        self.hits = 0
        self.misses = 0


#: Default hierarchy parameters (paper section 4, "General Core
#: Configurations"): 32KiB 2-way L1I / 64KiB 4-way L1D, 4-cycle latency;
#: 2MB 8-way L2 with 22-cycle hit; DRAM at 150 cycles.
DEFAULT_L1I = dict(size_words=4096, ways=2, hit_latency=4, name="l1i")
DEFAULT_L1D = dict(size_words=8192, ways=4, hit_latency=4, name="l1d")
DEFAULT_L2 = dict(size_words=262144, ways=8, hit_latency=22, name="l2")
DEFAULT_DRAM_LATENCY = 150


class CacheHierarchy:
    """L1I + L1D backed by a shared L2 and flat-latency DRAM."""

    def __init__(self, l1i=None, l1d=None, l2=None,
                 dram_latency=DEFAULT_DRAM_LATENCY):
        self.l1i = Cache(CacheConfig(**(l1i or DEFAULT_L1I)))
        self.l1d = Cache(CacheConfig(**(l1d or DEFAULT_L1D)))
        self.l2 = Cache(CacheConfig(**(l2 or DEFAULT_L2)))
        self.dram_latency = dram_latency
        self.dram_accesses = 0

    def _access(self, l1, addr):
        """Returns (latency, level) with level in {'l1','l2','dram'}."""
        if l1.lookup(addr):
            return l1.config.hit_latency, "l1"
        if self.l2.lookup(addr):
            return l1.config.hit_latency + self.l2.config.hit_latency, "l2"
        self.dram_accesses += 1
        latency = (l1.config.hit_latency + self.l2.config.hit_latency
                   + self.dram_latency)
        return latency, "dram"

    def access_data(self, addr):
        """Data-side access (loads and stores share the port model)."""
        return self._access(self.l1d, addr)

    def access_inst(self, addr):
        """Instruction-fetch access."""
        return self._access(self.l1i, addr)

    def warm_instructions(self, count):
        """Pre-touch *count* instruction addresses (sequential-prefetch
        warm-up; the paper fast-forwards past initialization, so
        steady-state runs never see a cold front end)."""
        for addr in range(0, count, LINE_WORDS):
            self.l1i.lookup(addr)
            self.l2.lookup(addr)
        self.l1i.reset_stats()
        self.l2.reset_stats()

    def reset_stats(self):
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.dram_accesses = 0
