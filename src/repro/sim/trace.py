"""Dynamic-trace records consumed by the TDG constructor.

A :class:`DynInst` is one executed instruction carrying the dynamic
facts the paper's µDG embeds: producer seq-ids for each register
operand, the memory dependence, the observed memory latency, and branch
outcome/misprediction.  A :class:`Trace` is the ordered stream plus
summary statistics.
"""

from repro.isa.opcodes import op_class, fu_latency


class DynInst:
    """One dynamic instruction instance."""

    __slots__ = (
        "seq", "static", "opcode", "src_deps", "mem_dep", "mem_addr",
        "mem_lat", "mem_level", "taken", "mispredicted", "icache_lat",
        "accel", "extra_deps", "lat_override", "vector_width",
    )

    def __init__(self, seq, static, opcode, src_deps=(), mem_dep=None,
                 mem_addr=None, mem_lat=0, mem_level=None, taken=None,
                 mispredicted=False, icache_lat=0, accel=None,
                 extra_deps=(), lat_override=None, vector_width=1):
        self.seq = seq
        self.static = static        # the static Instruction (or a
        #                             transform-synthesized pseudo-inst)
        self.opcode = opcode        # may differ from static.opcode after
        #                             a transform rewrites it
        self.src_deps = tuple(src_deps)
        self.mem_dep = mem_dep      # seq of the store this load/store
        #                             depends on, or None
        self.mem_addr = mem_addr
        self.mem_lat = mem_lat
        self.mem_level = mem_level  # 'l1' | 'l2' | 'dram' | None
        self.taken = taken
        self.mispredicted = mispredicted
        self.icache_lat = icache_lat
        # ---- transform-side fields (paper's "graph re-writing") ------
        self.accel = accel          # BSA tag when the op runs off-core
        self.extra_deps = tuple(extra_deps)   # (seq, latency) edges
        self.lat_override = lat_override      # transform-set latency
        self.vector_width = vector_width      # lanes (energy accounting)

    def clone(self, **overrides):
        """Copy with field overrides (used by TDG transforms)."""
        fields = dict(
            seq=self.seq, static=self.static, opcode=self.opcode,
            src_deps=self.src_deps, mem_dep=self.mem_dep,
            mem_addr=self.mem_addr, mem_lat=self.mem_lat,
            mem_level=self.mem_level, taken=self.taken,
            mispredicted=self.mispredicted, icache_lat=self.icache_lat,
            accel=self.accel, extra_deps=self.extra_deps,
            lat_override=self.lat_override,
            vector_width=self.vector_width,
        )
        fields.update(overrides)
        return DynInst(**fields)

    @property
    def op_class(self):
        return op_class(self.opcode)

    @property
    def latency(self):
        """Execute latency: a transform override if present, else the
        observed memory latency for memory ops, else FU latency."""
        if self.lat_override is not None:
            return self.lat_override
        if self.mem_addr is not None and self.mem_lat:
            return self.mem_lat
        return fu_latency(self.opcode)

    @property
    def uid(self):
        """Static uid ("PC") of the underlying instruction."""
        return self.static.uid if self.static is not None else None

    def __repr__(self):
        return (f"<DynInst #{self.seq} {self.opcode.value} "
                f"uid={self.uid}>")


class Trace:
    """An executed instruction stream plus execution metadata."""

    def __init__(self, program, instructions, memory=None, registers=None):
        self.program = program
        self.instructions = instructions
        self.memory = memory          # final memory image (for checks)
        self.registers = registers    # final register file
        self.block_counts = {}        # (func, label) -> executions
        self.branch_outcomes = {}     # static uid -> [not_taken, taken]

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def record_block(self, function_name, label):
        key = (function_name, label)
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    def record_branch(self, uid, taken):
        outcome = self.branch_outcomes.setdefault(uid, [0, 0])
        outcome[int(taken)] += 1

    def branch_bias(self, uid):
        """Probability the branch at *uid* is taken (0.5 if unseen)."""
        outcome = self.branch_outcomes.get(uid)
        if not outcome or not sum(outcome):
            return 0.5
        return outcome[1] / sum(outcome)

    # -- summary statistics used by analyses and tests -----------------
    def count_opcodes(self):
        counts = {}
        for dyn in self.instructions:
            counts[dyn.opcode] = counts.get(dyn.opcode, 0) + 1
        return counts

    def mispredict_count(self):
        return sum(1 for dyn in self.instructions if dyn.mispredicted)

    def memory_access_count(self):
        return sum(1 for dyn in self.instructions
                   if dyn.mem_addr is not None)
