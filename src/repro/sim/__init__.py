"""Trace-generation substrate (the role gem5 played for Prism).

The interpreter executes a Program functionally while attached cache and
branch-predictor models annotate each dynamic instruction with the
micro-architectural facts the TDG embeds: memory latency, memory
dependences, and branch mispredictions (paper section 2.3).
"""

from repro.sim.cache import Cache, CacheHierarchy, CacheConfig
from repro.sim.branch import GSharePredictor, BimodalPredictor
from repro.sim.trace import DynInst, Trace
from repro.sim.interpreter import Interpreter, run_program

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheConfig",
    "GSharePredictor",
    "BimodalPredictor",
    "DynInst",
    "Trace",
    "Interpreter",
    "run_program",
]
