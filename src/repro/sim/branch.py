"""Branch-direction predictors.

Only conditional branches (``br``) are predicted; unconditional control
is assumed BTB-resolved.  The default is a gshare predictor; a bimodal
predictor is provided for sensitivity studies and tests.
"""


class BimodalPredictor:
    """Per-PC table of 2-bit saturating counters."""

    def __init__(self, table_bits=12):
        self.table_size = 1 << table_bits
        self._counters = [2] * self.table_size  # weakly taken
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc):
        return pc % self.table_size

    def predict_and_update(self, pc, taken):
        """Predict branch at *pc*, then train with the outcome.
        Returns True if the prediction was correct."""
        index = self._index(pc)
        counter = self._counters[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        return correct

    @property
    def misprediction_rate(self):
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class GSharePredictor(BimodalPredictor):
    """Global-history XOR-indexed 2-bit counter table."""

    def __init__(self, table_bits=12, history_bits=12):
        super().__init__(table_bits)
        self.history_bits = history_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc):
        return (pc ^ self._history) % self.table_size

    def predict_and_update(self, pc, taken):
        correct = super().predict_and_update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask
        return correct


def predictor_for_core(config):
    """Branch predictor sized for one core configuration.

    Trace annotations (mispredict flags) are recorded once under a
    *source* core and then reused to predict other targets (the
    paper's Table 1 "OOOx -> OOOy" experiment); the predictor is the
    part of that recording that genuinely depends on the source
    machine.  Wider speculative cores invest in larger history
    structures, narrow ones in smaller, and in-order cores in a plain
    bimodal table.  ``None`` (or the default OOO2-class sizing) yields
    a predictor identical to ``GSharePredictor()``, so existing traces
    are unchanged unless a source core is requested explicitly.
    """
    if config is None:
        return GSharePredictor()
    if config.in_order:
        return BimodalPredictor(table_bits=10)
    if config.width <= 1:
        bits = 10
    elif config.width <= 2:
        bits = 12
    elif config.width <= 4:
        bits = 13
    else:
        bits = 14
    return GSharePredictor(table_bits=bits, history_bits=bits)
