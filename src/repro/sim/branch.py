"""Branch-direction predictors.

Only conditional branches (``br``) are predicted; unconditional control
is assumed BTB-resolved.  The default is a gshare predictor; a bimodal
predictor is provided for sensitivity studies and tests.
"""


class BimodalPredictor:
    """Per-PC table of 2-bit saturating counters."""

    def __init__(self, table_bits=12):
        self.table_size = 1 << table_bits
        self._counters = [2] * self.table_size  # weakly taken
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc):
        return pc % self.table_size

    def predict_and_update(self, pc, taken):
        """Predict branch at *pc*, then train with the outcome.
        Returns True if the prediction was correct."""
        index = self._index(pc)
        counter = self._counters[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        return correct

    @property
    def misprediction_rate(self):
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class GSharePredictor(BimodalPredictor):
    """Global-history XOR-indexed 2-bit counter table."""

    def __init__(self, table_bits=12, history_bits=12):
        super().__init__(table_bits)
        self.history_bits = history_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc):
        return (pc ^ self._history) % self.table_size

    def predict_and_update(self, pc, taken):
        correct = super().predict_and_update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask
        return correct
