"""CFG orderings and dominator analysis.

Standard iterative dominator computation (Cooper-Harvey-Kennedy style
but on label sets, which is plenty for our block counts), used to find
natural loops.
"""


def successors_map(function):
    """Map label -> list of successor labels."""
    return {block.label: block.successors() for block in function.blocks}


def reverse_post_order(function):
    """Labels in reverse post-order from the entry (unreachable blocks
    are excluded)."""
    succs = successors_map(function)
    visited = set()
    order = []

    entry = function.entry.label
    # Iterative DFS with an explicit stack (post-order on exit).
    stack = [(entry, iter(succs[entry]))]
    visited.add(entry)
    while stack:
        label, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(succs[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(label)
            stack.pop()
    order.reverse()
    return order


def dominators(function):
    """Map label -> set of labels dominating it (including itself)."""
    order = reverse_post_order(function)
    preds = function.predecessors()
    entry = function.entry.label
    reachable = set(order)
    dom = {label: set(order) for label in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            pred_doms = [dom[p] for p in preds[label] if p in reachable]
            if pred_doms:
                new = set.intersection(*pred_doms)
            else:
                new = set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def back_edges(function):
    """CFG edges (tail, head) where head dominates tail (loop latches)."""
    dom = dominators(function)
    edges = []
    for src, dst in function.cfg_edges():
        if src in dom and dst in dom.get(src, ()):
            edges.append((src, dst))
    return edges
