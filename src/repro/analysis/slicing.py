"""Access/execute slicing for DP-CGRA (the DySER slicing algorithm).

Splits a loop body between the general core (memory access: loads,
stores, address computation, loop control) and the CGRA (the
computation subgraph).  Values crossing the boundary become
communication instructions; the paper's analysis "disregards loops with
more communication instructions than offloaded computation".

The slice is computed from dynamic sample iterations (the TDG carries
the dynamic DFG), then expressed per static instruction.
"""

from repro.isa.opcodes import Opcode, is_compute, is_memory
from repro.analysis.memdep import iteration_spans

#: Roles a static instruction can take in the slice.
ROLE_ACCESS = "access"      # stays on the core
ROLE_EXECUTE = "execute"    # offloaded to the CGRA
ROLE_CONTROL = "control"    # loop control, stays on the core


class SliceInfo:
    """Access/execute split of one loop body."""

    def __init__(self, loop):
        self.loop = loop
        self.roles = {}          # static uid -> role
        self.comm_in_uids = set()    # core->CGRA live values
        self.comm_out_uids = set()   # CGRA->core live values

    @property
    def key(self):
        return self.loop.key

    @property
    def offloaded_count(self):
        return sum(1 for role in self.roles.values()
                   if role == ROLE_EXECUTE)

    @property
    def comm_count(self):
        return len(self.comm_in_uids) + len(self.comm_out_uids)

    @property
    def profitable(self):
        """More offloaded computation than communication (paper)."""
        return self.offloaded_count > self.comm_count

    def role_of(self, uid):
        return self.roles.get(uid, ROLE_ACCESS)

    def __repr__(self):
        return (f"<SliceInfo {self.key}: {self.offloaded_count} exec, "
                f"{self.comm_count} comm>")


def slice_loop_body(tdg, loop, intervals, sample_iterations=4):
    """Compute the access/execute slice for *loop*.

    Strategy (mirrors the DySER slicing the paper borrows):

    1. memory ops and control stay on the core;
    2. the backward slice of every address operand stays on the core;
    3. remaining compute is offloaded;
    4. values flowing core->CGRA (load results, induction values) and
       CGRA->core (store data, live-outs) are communication.
    """
    trace = tdg.trace.instructions
    info = SliceInfo(loop)
    function_name = loop.function.name
    blocks = loop.blocks

    loop_uids = {inst.uid for inst in loop.instructions()}

    # Seed roles from static properties.
    for inst in loop.instructions():
        if inst.is_memory:
            info.roles[inst.uid] = ROLE_ACCESS
        elif inst.opcode in (Opcode.BR, Opcode.JMP, Opcode.CALL,
                             Opcode.RET, Opcode.HALT):
            info.roles[inst.uid] = ROLE_CONTROL
        elif is_compute(inst.opcode) or inst.opcode is Opcode.MOV:
            info.roles[inst.uid] = ROLE_EXECUTE
        else:
            info.roles[inst.uid] = ROLE_ACCESS

    # Walk sample iterations to pull address slices back to the core.
    samples = []
    for start, end in intervals:
        for span in iteration_spans(trace, loop, start, end):
            samples.append(span)
            if len(samples) >= sample_iterations:
                break
        if len(samples) >= sample_iterations:
            break

    for span_start, span_end in samples:
        producers = {}    # seq -> dyn inst, within the sample
        address_seqs = set()
        control_seqs = set()
        for index in range(span_start, span_end):
            dyn = trace[index]
            static = dyn.static
            if static is None or static.uid not in loop_uids:
                continue
            producers[dyn.seq] = dyn
            if dyn.mem_addr is not None and dyn.src_deps:
                # First operand of a memory op is the address base.
                address_seqs.add(dyn.src_deps[0])
            if static.opcode is Opcode.BR and dyn.src_deps:
                # The latch condition's slice stays on the core.
                block = static.block
                is_latch = (block.label in blocks
                            and block.function.name == function_name
                            and static.target == loop.header)
                if is_latch:
                    control_seqs.add(dyn.src_deps[0])
        # Backward closure of address/control slices.
        worklist = list(address_seqs | control_seqs)
        on_core = set(worklist)
        while worklist:
            seq = worklist.pop()
            dyn = producers.get(seq)
            if dyn is None:
                continue
            uid = dyn.static.uid if dyn.static else None
            if uid in loop_uids and info.roles.get(uid) == ROLE_EXECUTE:
                info.roles[uid] = ROLE_ACCESS
            for dep in dyn.src_deps:
                if dep not in on_core:
                    on_core.add(dep)
                    worklist.append(dep)

    # Communication: boundary-crossing values, from one sample.
    if samples:
        span_start, span_end = samples[0]
        dyn_by_seq = {}
        for index in range(span_start, span_end):
            dyn = trace[index]
            if dyn.static is not None and dyn.static.uid in loop_uids:
                dyn_by_seq[dyn.seq] = dyn
        for dyn in dyn_by_seq.values():
            uid = dyn.static.uid
            my_role = info.roles.get(uid, ROLE_ACCESS)
            for dep in dyn.src_deps:
                producer = dyn_by_seq.get(dep)
                if producer is None:
                    # Live-in from outside the iteration.
                    if my_role == ROLE_EXECUTE:
                        info.comm_in_uids.add(uid)
                    continue
                producer_role = info.roles.get(producer.static.uid,
                                               ROLE_ACCESS)
                if producer_role != ROLE_EXECUTE \
                        and my_role == ROLE_EXECUTE:
                    info.comm_in_uids.add(producer.static.uid)
                elif producer_role == ROLE_EXECUTE \
                        and my_role != ROLE_EXECUTE:
                    info.comm_out_uids.add(producer.static.uid)
    return info
