"""Compound-functional-unit (CFU) scheduling for NS-DF and Trace-P.

The paper schedules instructions onto CFUs with mathematical
optimization [SEED]; it also notes its BERET model approximates with
"size-based compound functional units".  We implement a greedy
chain-packing scheduler over the loop body's dataflow graph: dependent
single-use chains are fused into one compound op up to a size limit,
which is exactly the size-based approximation the paper validates.
"""

from repro.isa.opcodes import Opcode, is_compute


class CFUSchedule:
    """Assignment of static instructions to compound units."""

    def __init__(self, loop, max_cfu_size, cross_control):
        self.loop = loop
        self.max_cfu_size = max_cfu_size
        self.cross_control = cross_control
        self.cfus = []          # list of lists of static uids
        self.cfu_of = {}        # uid -> cfu index

    @property
    def key(self):
        return self.loop.key

    @property
    def compound_count(self):
        return len(self.cfus)

    @property
    def scheduled_ops(self):
        return len(self.cfu_of)

    @property
    def average_fusion(self):
        if not self.cfus:
            return 0.0
        return self.scheduled_ops / len(self.cfus)

    def fits(self, budget):
        """Does the configuration fit the hardware's static-instruction
        budget?"""
        return self.compound_count <= budget

    def __repr__(self):
        return (f"<CFUSchedule {self.key}: {self.compound_count} CFUs, "
                f"avg fusion {self.average_fusion:.1f}>")


def _static_dataflow(loop):
    """Approximate def-use graph over the loop's static instructions.

    Within each block we track last-writer per register; cross-block
    uses are not linked (conservative: chains never cross block
    boundaries unless *cross_control* relinks them).
    """
    edges = {}        # uid -> list of consumer uids
    uses = {}         # uid -> number of consumers
    per_block_chains = []
    for label in sorted(loop.blocks):
        block = loop.function.block(label)
        last_writer = {}
        for inst in block:
            for reg in inst.srcs:
                producer = last_writer.get(reg)
                if producer is not None:
                    edges.setdefault(producer, []).append(inst.uid)
                    uses[producer] = uses.get(producer, 0) + 1
            if inst.dest is not None:
                last_writer[inst.dest] = inst.uid
        per_block_chains.append(label)
    return edges, uses


def schedule_cfus(loop, max_cfu_size=4, cross_control=False,
                  eligible_uids=None):
    """Greedily pack the loop's compute ops into CFUs.

    *cross_control* allows compound ops to span basic blocks (Trace-P's
    advantage over NS-DF, paper Table 2 / section 3.1).
    *eligible_uids* restricts scheduling (e.g. hot-path-only for
    Trace-P).
    """
    schedule = CFUSchedule(loop, max_cfu_size, cross_control)
    edges, uses = _static_dataflow(loop)

    block_of = {}
    order = []
    for label in sorted(loop.blocks):
        for inst in loop.function.block(label):
            if eligible_uids is not None and inst.uid not in eligible_uids:
                continue
            if is_compute(inst.opcode) or inst.opcode is Opcode.MOV:
                order.append(inst.uid)
                block_of[inst.uid] = label

    assigned = set()
    for uid in order:
        if uid in assigned:
            continue
        # Grow a chain through single-use dataflow successors.
        chain = [uid]
        assigned.add(uid)
        current = uid
        while len(chain) < max_cfu_size:
            successors = [
                s for s in edges.get(current, ())
                if s not in assigned and s in block_of
            ]
            # Follow only single-use links (a CFU has one internal bus).
            if len(successors) != 1 or uses.get(current, 0) != 1:
                break
            nxt = successors[0]
            if not cross_control and block_of[nxt] != block_of[current]:
                break
            chain.append(nxt)
            assigned.add(nxt)
            current = nxt
        index = len(schedule.cfus)
        schedule.cfus.append(chain)
        for member in chain:
            schedule.cfu_of[member] = index
    return schedule
