"""Dynamic region segmentation: loop-invocation intervals in the trace.

The ExoCore switches execution between core and BSAs at loop entry
points (paper section 2.3: "fully switch between a core and accelerator
model of execution at loop entry points or function calls").  This
module finds, for every static loop, the contiguous trace intervals
[start, end) covering each dynamic invocation, respecting function-call
nesting (a callee's instructions stay inside the caller's interval).
"""


def _loop_chains(forest):
    """Map static uid -> tuple of loops from outermost to innermost."""
    program = forest.program
    chains = {}
    for inst in program.static_instructions:
        loop = forest.innermost_at(inst.block.function.name,
                                   inst.block.label)
        chain = []
        while loop is not None:
            chain.append(loop)
            loop = loop.parent
        chains[inst.uid] = tuple(reversed(chain))
    return chains


def loop_intervals(tdg, forest=None):
    """Map loop key -> list of [start, end) trace-index intervals, one
    per dynamic invocation of the loop."""
    from repro.isa.opcodes import Opcode

    if forest is None:
        forest = tdg.loop_tree
    chains = _loop_chains(forest)
    intervals = {loop.key: [] for loop in forest}
    stack = []   # entries: [loop, start_index, call_depth]
    call_depth = 0
    trace = tdg.trace.instructions

    def close(entry, end):
        loop, start, _depth = entry
        if end > start:
            intervals[loop.key].append((start, end))

    for index, dyn in enumerate(trace):
        opcode = dyn.opcode
        if opcode is Opcode.RET:
            # Leaving the callee: close its loops before popping depth.
            while stack and stack[-1][2] == call_depth:
                close(stack.pop(), index)
            call_depth -= 1
            continue
        chain = chains.get(dyn.uid, ())
        chain_set = set(chain)
        # Close loops we are no longer inside (same call depth only).
        while stack and stack[-1][2] == call_depth \
                and stack[-1][0] not in chain_set:
            close(stack.pop(), index)
        # Open newly-entered loops, outermost first.
        on_stack = {entry[0] for entry in stack}
        for loop in chain:
            if loop not in on_stack:
                stack.append([loop, index, call_depth])
                on_stack.add(loop)
        if opcode is Opcode.CALL:
            call_depth += 1
    end = len(trace)
    while stack:
        close(stack.pop(), end)
    return intervals


def attribute_baseline(commit_times, intervals, total_cycles):
    """Baseline core cycles attributed to each interval list.

    *commit_times* is the per-instruction commit-time list from a
    full-trace engine run with ``collect_commit_times=True``.

    Returns (per_key_cycles, uncovered_cycles) where *per_key_cycles*
    maps each key of *intervals* to its summed cycles and
    *uncovered_cycles* is ``total_cycles`` minus the cycles of the
    top-level (non-overlapping) interval set.
    """
    per_key = {}
    for key, spans in intervals.items():
        cycles = 0
        for start, end in spans:
            t_end = commit_times[end - 1] if end > 0 else 0
            t_start = commit_times[start - 1] if start > 0 else 0
            cycles += t_end - t_start
        per_key[key] = cycles
    return per_key


class RegionProfile:
    """Aggregate view of one static loop's dynamic behavior."""

    def __init__(self, loop, intervals):
        self.loop = loop
        self.intervals = list(intervals)

    @property
    def key(self):
        return self.loop.key

    @property
    def invocations(self):
        return len(self.intervals)

    @property
    def dynamic_instructions(self):
        return sum(end - start for start, end in self.intervals)

    def streams(self, trace):
        """Yield the trace slice of each invocation."""
        for start, end in self.intervals:
            yield trace.instructions[start:end]

    def __repr__(self):
        return (f"<RegionProfile {self.key} x{self.invocations} "
                f"({self.dynamic_instructions} dyn insts)>")
