"""TDG analysis passes (the paper's "TDG Analyzer", Fig. 2/4c).

These passes inspect the program IR and the dynamic trace to find
legally and profitably acceleratable regions and produce the
transformation "plan" each BSA transform consumes:

- :mod:`repro.analysis.cfg` — dominators and CFG orderings
- :mod:`repro.analysis.loops` — natural loops and the nesting forest
- :mod:`repro.analysis.regions` — dynamic loop-invocation intervals
- :mod:`repro.analysis.pathprof` — Ball-Larus-style path profiling
- :mod:`repro.analysis.memdep` — inter-iteration dependence analysis
  (vectorization legality)
- :mod:`repro.analysis.slicing` — access/execute slicing (DP-CGRA)
- :mod:`repro.analysis.cfu` — compound-FU scheduling (NS-DF, Trace-P)
- :mod:`repro.analysis.behavior` — the paper's Fig. 6 behavior taxonomy
"""

from repro.analysis.cfg import dominators, reverse_post_order
from repro.analysis.loops import Loop, build_loop_forest
from repro.analysis.regions import (
    loop_intervals, attribute_baseline, RegionProfile,
)
from repro.analysis.pathprof import profile_paths, LoopPathProfile
from repro.analysis.memdep import analyze_loop_dependences, LoopDepInfo
from repro.analysis.slicing import slice_loop_body, SliceInfo
from repro.analysis.cfu import schedule_cfus, CFUSchedule
from repro.analysis.behavior import classify_loop, BehaviorClass

__all__ = [
    "dominators",
    "reverse_post_order",
    "Loop",
    "build_loop_forest",
    "loop_intervals",
    "attribute_baseline",
    "RegionProfile",
    "profile_paths",
    "LoopPathProfile",
    "analyze_loop_dependences",
    "LoopDepInfo",
    "slice_loop_body",
    "SliceInfo",
    "schedule_cfus",
    "CFUSchedule",
    "classify_loop",
    "BehaviorClass",
]
