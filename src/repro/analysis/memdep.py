"""Inter-iteration dependence analysis (vectorization legality).

The paper's SIMD analysis "optimistically analyzes the TDG's memory and
data dependences": loop-carried memory dependences are detected by
tracking per-iteration memory addresses in consecutive iterations, and
loop-carried register dependences are allowed only when they are
inductions or reductions.  Memory strides are classified per static
access so the transform knows which operations need scalar expansion
(non-contiguous) versus vector loads/stores.
"""

from repro.isa.opcodes import Opcode

#: Opcodes acceptable as reduction update operations.
_REDUCTION_OPS = {
    Opcode.ADD, Opcode.FADD, Opcode.FMUL, Opcode.MUL,
    Opcode.MIN, Opcode.MAX, Opcode.FMIN, Opcode.FMAX,
    Opcode.AND, Opcode.OR, Opcode.XOR,
}

#: Iteration distance window for memory-conflict checking (one vector
#: group, conservatively doubled).
_MEM_DEP_WINDOW = 8


def iteration_spans(trace, loop, start, end):
    """Split invocation [start, end) into per-iteration [s, e) spans.

    An iteration begins when the first instruction of the loop header
    executes.
    """
    header = loop.header
    function_name = loop.function.name
    spans = []
    iter_start = start
    for index in range(start, end):
        static = trace[index].static
        if static is None:
            continue
        block = static.block
        if (block.label == header
                and block.function.name == function_name
                and static.index == 0 and index > iter_start):
            spans.append((iter_start, index))
            iter_start = index
    if end > iter_start:
        spans.append((iter_start, end))
    return spans


class LoopDepInfo:
    """Dependence facts about one loop, per the SIMD analysis."""

    def __init__(self, loop):
        self.loop = loop
        self.carried_mem_dep = False
        self.carried_data_dep = False
        self.reduction_uids = set()
        self.induction_uids = set()
        self.load_strides = {}      # static uid -> stride or None
        self.store_strides = {}
        self.iterations_seen = 0

    @property
    def key(self):
        return self.loop.key

    @property
    def vectorizable(self):
        return not (self.carried_mem_dep or self.carried_data_dep)

    def stride_of(self, uid):
        if uid in self.load_strides:
            return self.load_strides[uid]
        return self.store_strides.get(uid)

    def contiguous_fraction(self):
        """Fraction of static memory ops with unit stride."""
        strides = list(self.load_strides.values()) \
            + list(self.store_strides.values())
        if not strides:
            return 1.0
        return sum(1 for s in strides if s == 1) / len(strides)

    def __repr__(self):
        return (f"<LoopDepInfo {self.key} "
                f"vectorizable={self.vectorizable}>")


def _is_induction(static):
    """``add i, i, imm`` (or sub) updating its own source."""
    return (static.opcode in (Opcode.ADD, Opcode.SUB)
            and static.imm is not None
            and static.dest is not None
            and static.srcs and static.srcs[0] == static.dest)


def _is_reduction(producer_static, consumer_static):
    """A self-accumulating op consumed by itself across iterations
    (``acc = acc op x``), possibly via a mov into the accumulator."""
    if producer_static is not consumer_static:
        # Builder-emitted form: op t, acc, x ; mov acc, t.  Accept the
        # op->mov and mov->op halves of that idiom only when the mov
        # actually forwards the op's result (otherwise an arbitrary
        # recurrence like state = state*3+1 would slip through).
        if consumer_static.opcode is Opcode.MOV \
                and producer_static.opcode in _REDUCTION_OPS \
                and consumer_static.srcs \
                and consumer_static.srcs[0] == producer_static.dest:
            return True
        if producer_static.opcode is Opcode.MOV \
                and consumer_static.opcode in _REDUCTION_OPS \
                and producer_static.srcs \
                and producer_static.srcs[0] == consumer_static.dest:
            return True
        return False
    return (consumer_static.opcode in _REDUCTION_OPS
            and consumer_static.dest is not None
            and consumer_static.dest in consumer_static.srcs)


def analyze_loop_dependences(tdg, loop, intervals, max_iterations=512):
    """Build :class:`LoopDepInfo` for *loop* from its trace intervals.

    Analysis is trace-based and optimistic, as in the paper ("we use
    dynamic information from the trace to estimate these features").
    """
    trace = tdg.trace.instructions
    info = LoopDepInfo(loop)
    function_name = loop.function.name
    blocks = loop.blocks

    # Map seq -> iteration ordinal, per invocation.
    prev_addr = {}     # static uid -> last address (stride tracking)
    stride_votes = {}  # static uid -> {stride: count}

    for start, end in intervals:
        spans = iteration_spans(trace, loop, start, end)
        seq_iter = {}
        store_addrs = {}   # addr -> iteration of last store
        access_addrs = {}  # addr -> iteration of last access
        for ordinal, (span_start, span_end) in enumerate(spans):
            if info.iterations_seen >= max_iterations:
                break
            info.iterations_seen += 1
            for index in range(span_start, span_end):
                dyn = trace[index]
                static = dyn.static
                if static is None:
                    continue
                in_loop = (static.block.function.name == function_name
                           and static.block.label in blocks)
                if not in_loop:
                    continue
                seq_iter[dyn.seq] = ordinal
                # ---- register loop-carried deps -------------------
                for dep in dyn.src_deps:
                    dep_iter = seq_iter.get(dep)
                    if dep_iter is None or dep_iter == ordinal:
                        continue
                    producer = trace[dep].static
                    if producer is None:
                        continue
                    if _is_induction(static) or _is_induction(producer):
                        info.induction_uids.add(static.uid)
                        continue
                    if _is_reduction(producer, static):
                        info.reduction_uids.add(static.uid)
                        continue
                    info.carried_data_dep = True
                # ---- memory loop-carried deps ----------------------
                if dyn.mem_addr is not None:
                    addr = dyn.mem_addr
                    uid = static.uid
                    if uid in prev_addr:
                        stride = addr - prev_addr[uid]
                        votes = stride_votes.setdefault(uid, {})
                        votes[stride] = votes.get(stride, 0) + 1
                    prev_addr[uid] = addr
                    if static.is_store:
                        other = access_addrs.get(addr)
                        if other is not None and other != ordinal \
                                and ordinal - other < _MEM_DEP_WINDOW:
                            info.carried_mem_dep = True
                        store_addrs[addr] = ordinal
                    else:
                        last_store = store_addrs.get(addr)
                        if last_store is not None \
                                and last_store != ordinal \
                                and ordinal - last_store \
                                < _MEM_DEP_WINDOW:
                            info.carried_mem_dep = True
                    access_addrs[addr] = ordinal
        if info.iterations_seen >= max_iterations:
            break

    # Majority-vote strides.
    for inst in loop.instructions():
        if not inst.is_memory:
            continue
        votes = stride_votes.get(inst.uid)
        if votes:
            stride, count = max(votes.items(), key=lambda kv: kv[1])
            total = sum(votes.values())
            resolved = stride if count / total >= 0.9 else None
        else:
            resolved = None
        if inst.is_load:
            info.load_strides[inst.uid] = resolved
        else:
            info.store_strides[inst.uid] = resolved
    return info
