"""Natural-loop detection and the loop-nesting forest.

The loop forest is the backbone of region selection: BSA analyses walk
it to find inner loops (SIMD, DP-CGRA, Trace-P) or whole nests (NS-DF),
and the Amdahl-tree scheduler (paper Fig. 9) performs its bottom-up
composition over it.
"""

from repro.analysis.cfg import back_edges


class Loop:
    """One natural loop.

    Attributes
    ----------
    function: owning Function
    header: header block label
    blocks: set of member block labels
    parent / children: nesting links
    """

    def __init__(self, function, header, blocks):
        self.function = function
        self.header = header
        self.blocks = set(blocks)
        self.parent = None
        self.children = []

    @property
    def key(self):
        """Stable identifier: (function name, header label)."""
        return (self.function.name, self.header)

    @property
    def depth(self):
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def is_inner(self):
        return not self.children

    def own_blocks(self):
        """Blocks of this loop not inside any child loop."""
        nested = set()
        for child in self.children:
            nested |= child.blocks
        return self.blocks - nested

    def instructions(self):
        """All static instructions in the loop (including children)."""
        for label in sorted(self.blocks):
            yield from self.function.block(label)

    def static_size(self):
        return sum(len(self.function.block(b)) for b in self.blocks)

    def contains_uid(self, uid, program):
        inst = program.instruction(uid)
        return (inst.block.function is self.function
                and inst.block.label in self.blocks)

    def descendants(self):
        """All loops nested inside (not including self)."""
        out = []
        stack = list(self.children)
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out

    def __repr__(self):
        return (f"<Loop {self.function.name}/{self.header} "
                f"depth={self.depth} blocks={len(self.blocks)}>")


def _natural_loop(function, latch, header):
    """Blocks of the natural loop of back edge latch->header."""
    preds = function.predecessors()
    blocks = {header, latch}
    stack = [latch]
    while stack:
        label = stack.pop()
        if label == header:
            continue
        for pred in preds.get(label, ()):
            if pred not in blocks:
                blocks.add(pred)
                stack.append(pred)
    return blocks


def build_loop_forest(program):
    """Return a LoopForest over all functions of *program*."""
    loops = []
    for function in program.functions.values():
        by_header = {}
        for latch, header in back_edges(function):
            blocks = _natural_loop(function, latch, header)
            if header in by_header:
                by_header[header] |= blocks
            else:
                by_header[header] = blocks
        for header, blocks in by_header.items():
            loops.append(Loop(function, header, blocks))
    # Nesting: parent = smallest strictly-enclosing loop.
    for loop in loops:
        best = None
        for other in loops:
            if other is loop or other.function is not loop.function:
                continue
            if loop.blocks < other.blocks:
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
    for loop in loops:
        if loop.parent is not None:
            loop.parent.children.append(loop)
    return LoopForest(program, loops)


class LoopForest:
    """All loops of a program with nesting structure and lookups."""

    def __init__(self, program, loops):
        self.program = program
        self.loops = loops
        self._by_key = {loop.key: loop for loop in loops}
        # Innermost loop per (function, block label).
        self._innermost = {}
        for loop in sorted(loops, key=lambda l: len(l.blocks),
                           reverse=True):
            for label in loop.blocks:
                self._innermost[(loop.function.name, label)] = loop

    @property
    def roots(self):
        return [loop for loop in self.loops if loop.parent is None]

    def loop(self, key):
        return self._by_key[key]

    def innermost_at(self, function_name, label):
        """The innermost loop containing block *label*, or None."""
        return self._innermost.get((function_name, label))

    def loop_of_uid(self, uid):
        """Innermost loop containing the static instruction *uid*."""
        inst = self.program.instruction(uid)
        return self.innermost_at(inst.block.function.name,
                                 inst.block.label)

    def __iter__(self):
        return iter(self.loops)

    def __len__(self):
        return len(self.loops)

    def __repr__(self):
        return f"<LoopForest {len(self.loops)} loops>"
