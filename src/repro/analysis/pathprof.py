"""Loop path profiling (the Ball-Larus role in the paper).

For each loop we profile, per dynamic iteration, the sequence of its
own basic blocks executed — a "path".  Trace-P uses the hot path and
its probability; SIMD's profitability test uses expected dynamic
instructions per iteration; the Amdahl tree uses trip counts.
"""

from collections import Counter

from repro.isa.opcodes import Opcode
from repro.analysis.regions import loop_intervals


class LoopPathProfile:
    """Path statistics for one loop."""

    def __init__(self, loop):
        self.loop = loop
        self.invocations = 0
        self.iterations = 0
        self.dyn_insts = 0
        self.branch_insts = 0           # dynamic conditional branches
        self.path_counts = Counter()    # tuple(labels) -> count

    @property
    def key(self):
        return self.loop.key

    @property
    def hot_path(self):
        if not self.path_counts:
            return ()
        return self.path_counts.most_common(1)[0][0]

    @property
    def hot_path_probability(self):
        if not self.iterations:
            return 0.0
        return self.path_counts.most_common(1)[0][1] / self.iterations

    @property
    def loop_back_probability(self):
        """Probability an iteration is followed by another (paper's
        Trace-P eligibility uses > 80%)."""
        if not self.iterations:
            return 0.0
        return max(0.0, (self.iterations - self.invocations)
                   / self.iterations)

    @property
    def average_trip_count(self):
        if not self.invocations:
            return 0.0
        return self.iterations / self.invocations

    @property
    def branch_fraction(self):
        """Dynamic conditional-branch density inside the loop."""
        if not self.dyn_insts:
            return 0.0
        return self.branch_insts / self.dyn_insts

    @property
    def insts_per_iteration(self):
        if not self.iterations:
            return 0.0
        return self.dyn_insts / self.iterations

    def __repr__(self):
        return (f"<LoopPathProfile {self.key}: {self.iterations} iters, "
                f"hot={self.hot_path_probability:.2f}>")


def profile_paths(tdg, forest=None, intervals=None):
    """Profile every loop; returns {loop key: LoopPathProfile}."""
    if forest is None:
        forest = tdg.loop_tree
    if intervals is None:
        intervals = loop_intervals(tdg, forest)
    trace = tdg.trace.instructions
    profiles = {}
    for loop in forest:
        profile = LoopPathProfile(loop)
        spans = intervals.get(loop.key, ())
        header = loop.header
        function_name = loop.function.name
        blocks = loop.blocks
        for start, end in spans:
            profile.invocations += 1
            current_path = []
            for dyn in trace[start:end]:
                static = dyn.static
                if static is None:
                    continue
                block = static.block
                if block.function.name != function_name \
                        or block.label not in blocks:
                    continue  # callee code or non-loop block
                profile.dyn_insts += 1
                if static.opcode is Opcode.BR:
                    profile.branch_insts += 1
                # A block entry is the execution of its first inst.
                if static.index == 0:
                    if block.label == header and current_path:
                        profile.path_counts[tuple(current_path)] += 1
                        profile.iterations += 1
                        current_path = []
                    current_path.append(block.label)
                elif not current_path:
                    # Invocation started mid-block (do-while latch):
                    # count the header implicitly.
                    current_path.append(block.label)
            if current_path:
                profile.path_counts[tuple(current_path)] += 1
                profile.iterations += 1
        profiles[loop.key] = profile
    return profiles
