"""Program-behavior taxonomy (paper Figure 6).

Classifies each loop into the leaf behaviors of the paper's behavior
space, which map one-to-one onto specialization mechanisms:

====================================  =========================
behavior                              mechanism
====================================  =========================
data parallel, low control            Vectorization+Predication
data parallel, separable              Vectorization+Access-Execute
non-data-parallel, non-critical ctrl  Non-Speculative Dataflow
control critical but consistent       Trace-Speculative Core
control critical and varying          (general core)
low potential ILP                     Simple core
====================================  =========================
"""

import enum

from repro.isa.opcodes import is_compute


class BehaviorClass(enum.Enum):
    """Leaves of the paper's Fig. 6 behavior space."""

    DATA_PARALLEL_LOW_CONTROL = "vectorization+predication"
    DATA_PARALLEL_SEPARABLE = "vectorization+access-execute"
    NON_CRITICAL_CONTROL = "non-speculative dataflow"
    CONSISTENT_CONTROL = "trace-speculative core"
    VARYING_CONTROL = "general core"
    LOW_ILP = "simple core"


#: Hot-path probability above which control is "consistent" (paper:
#: loop-back probability 80% + hot traces).
_CONSISTENT_THRESHOLD = 0.80

#: Ops-per-critical-path-length below which ILP potential is "low".
_LOW_ILP_THRESHOLD = 1.5


def dataflow_ilp(loop):
    """Approximate potential ILP: compute ops / longest static
    dependence chain, over the loop's blocks."""
    depth = {}
    n_ops = 0
    longest = 1
    for label in sorted(loop.blocks):
        block = loop.function.block(label)
        last_writer = {}
        for inst in block:
            if not (is_compute(inst.opcode) or inst.is_memory):
                continue
            n_ops += 1
            d = 1
            for reg in inst.srcs:
                producer = last_writer.get(reg)
                if producer is not None:
                    d = max(d, depth[producer] + 1)
            depth[inst.uid] = d
            longest = max(longest, d)
            if inst.dest is not None:
                last_writer[inst.dest] = inst.uid
    if not n_ops:
        return 1.0
    return n_ops / longest


def classify_loop(dep_info, path_profile, slice_info):
    """Assign a BehaviorClass to a loop given its analyses."""
    loop = dep_info.loop
    n_blocks = len(loop.blocks)
    vectorizable = dep_info.vectorizable
    hot_prob = path_profile.hot_path_probability
    ilp = dataflow_ilp(loop)

    if vectorizable:
        if n_blocks <= 2 and dep_info.contiguous_fraction() >= 0.5:
            return BehaviorClass.DATA_PARALLEL_LOW_CONTROL
        if slice_info.profitable:
            return BehaviorClass.DATA_PARALLEL_SEPARABLE
        return BehaviorClass.DATA_PARALLEL_LOW_CONTROL
    if ilp < _LOW_ILP_THRESHOLD and n_blocks <= 2:
        return BehaviorClass.LOW_ILP
    if n_blocks <= 2 or ilp >= _LOW_ILP_THRESHOLD:
        if n_blocks > 2 and hot_prob >= _CONSISTENT_THRESHOLD:
            return BehaviorClass.CONSISTENT_CONTROL
        if n_blocks <= 4:
            return BehaviorClass.NON_CRITICAL_CONTROL
    if hot_prob >= _CONSISTENT_THRESHOLD:
        return BehaviorClass.CONSISTENT_CONTROL
    return BehaviorClass.VARYING_CONTROL
