"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                      enumerate the workload suite (Table 3)
trace NAME                simulate one benchmark, print trace stats
run NAME                  evaluate one benchmark on ExoCores
classify NAME             behavior classes of its loops (Fig. 6)
sweep [NAMES...]          design-space exploration (Figs. 10-13)
explore [NAMES...]        surrogate-assisted search of the extended
                          design space (EXPLORE_*.json)
cache export              dump the sweep cache as JSONL training records
bench                     perf-trajectory smoke benchmark (BENCH_*.json)
validate                  regenerate the Table 1 validation summary
serve                     long-lived HTTP evaluation service
                          (``--worker-of URL`` joins a fleet)
coordinate [NAMES...]     coordinate a sweep across worker nodes
                          (lease-based dispatch, heartbeat eviction)
obs report                run-history health report (trends + EWMA
                          regression flags from the runlog)
profile NAMES...          sampling stack profiler over evaluations;
                          flamegraph-folded output

Every command exits 0 on success and nonzero on failure; operational
errors (unknown benchmark, unreachable service, ...) print one
``repro <command>: error: ...`` line instead of a traceback.  Set
``REPRO_DEBUG=1`` to re-raise with the full traceback.
"""

import argparse
import os
import sys

ALL_BSAS = ("simd", "dp_cgra", "ns_df", "trace_p")


class CLIError(Exception):
    """Operational failure with a user-facing message (exit code 1)."""


def _workload(name):
    from repro.workloads import WORKLOADS
    try:
        return WORKLOADS[name]
    except KeyError:
        raise CLIError(f"unknown benchmark {name!r} "
                       "(run `repro list` for the suite)") from None


def _cmd_list(_args):
    from repro.workloads import WORKLOADS, SUITE_CATEGORY
    print(f"{'name':<14} {'suite':<12} {'category':<12} description")
    print("-" * 78)
    for name in sorted(WORKLOADS):
        w = WORKLOADS[name]
        print(f"{name:<14} {w.suite:<12} {w.category:<12} "
              f"{w.description}")
    print(f"\n{len(WORKLOADS)} benchmarks across "
          f"{len(SUITE_CATEGORY)} suites")
    return 0


def _cmd_trace(args):
    if args.out:
        return _cmd_trace_export(args)
    tdg = _workload(args.name).construct_tdg(scale=args.scale)
    trace = tdg.trace
    print(f"{args.name}: {len(trace)} dynamic instructions, "
          f"{len(tdg.program)} static")
    print(f"loops: {len(tdg.loop_tree)}  "
          f"(roots: {len(tdg.loop_tree.roots)})")
    print(f"memory accesses: {trace.memory_access_count()}")
    print(f"branch mispredicts: {trace.mispredict_count()}")
    counts = sorted(trace.count_opcodes().items(),
                    key=lambda kv: -kv[1])[:10]
    print("top opcodes:", ", ".join(
        f"{op.value}={n}" for op, n in counts))
    return 0


def _cmd_trace_export(args):
    """``repro trace NAME --out t.json``: Perfetto-loadable trace.

    Records the whole pipeline (build -> simulate -> TDG -> evaluate
    -> schedule) as spans, then appends the modeled switching timeline
    (paper Fig. 14) as a separate track whose time axis is baseline
    cycles, and writes one Chrome trace-event JSON file.
    """
    from repro.exocore import evaluate_benchmark, oracle_schedule
    from repro.obs import (
        enable, get_recorder, modeled_timeline_events, span_summary,
        write_chrome_trace,
    )

    bsas = tuple(args.bsas.split(",")) if args.bsas else ALL_BSAS
    unknown = [b for b in bsas if b not in ALL_BSAS]
    if unknown:
        raise CLIError(f"unknown BSAs {unknown!r} "
                       f"(known: {', '.join(ALL_BSAS)})")
    workload = _workload(args.name)
    enable(reset=True)
    tdg = workload.construct_tdg(scale=args.scale)
    evaluation = evaluate_benchmark(
        tdg, core_names=(args.core,), bsa_names=bsas, name=args.name)
    schedule = oracle_schedule(evaluation, args.core, bsas)
    modeled = modeled_timeline_events(
        evaluation, schedule, core_name=args.core,
        benchmark=args.name)
    write_chrome_trace(args.out, extra_events=modeled,
                       label=f"repro pipeline: {args.name}")
    recorder = get_recorder()
    print(f"[trace] {args.name}: {len(recorder)} pipeline spans + "
          f"{len(modeled)} modeled-timeline events -> {args.out}")
    for row in span_summary(recorder, top=5):
        print(f"[trace]   {row['span']:<28} x{row['count']:<4} "
              f"total {row['total_ms']:.1f} ms")
    print(f"[trace] open in https://ui.perfetto.dev "
          f"(or chrome://tracing)")
    return 0


def _cmd_run(args):
    from repro.core_model import core_by_name
    from repro.energy import exocore_area
    from repro.exocore import evaluate_benchmark, oracle_schedule

    bsas = tuple(args.bsas.split(",")) if args.bsas else ALL_BSAS
    unknown = [b for b in bsas if b not in ALL_BSAS]
    if unknown:
        raise CLIError(f"unknown BSAs {unknown!r} "
                       f"(known: {', '.join(ALL_BSAS)})")
    tdg = _workload(args.name).construct_tdg(scale=args.scale)
    evaluation = evaluate_benchmark(tdg, name=args.name,
                                    engine=args.engine)
    print(f"{'design':<16} {'cycles':>10} {'nJ':>10} {'speedup':>8} "
          f"{'energyX':>8} {'area':>6}")
    for core in ("IO2", "OOO2", "OOO4", "OOO6"):
        base = evaluation.baseline(core)
        schedule = oracle_schedule(evaluation, core, bsas)
        area = exocore_area(core_by_name(core), bsas)
        print(f"{core + '-Exo':<16} {schedule.cycles:>10} "
              f"{schedule.energy_pj / 1000:>10.1f} "
              f"{base.cycles / schedule.cycles:>8.2f} "
              f"{base.energy_pj / schedule.energy_pj:>8.2f} "
              f"{area:>6.2f}")
    schedule = oracle_schedule(evaluation, "OOO2", bsas)
    print("\nOOO2 assignment:")
    for key, unit in sorted(schedule.assignment.items()):
        print(f"  {key[0]}/{key[1]:<14} -> {unit}")
    return 0


def _cmd_classify(args):
    from repro.accel import AnalysisContext
    from repro.analysis import classify_loop
    tdg = _workload(args.name).construct_tdg(scale=args.scale)
    ctx = AnalysisContext(tdg)
    for loop in ctx.forest:
        if not loop.is_inner:
            continue
        behavior = classify_loop(ctx.dep_info(loop),
                                 ctx.path_profiles[loop.key],
                                 ctx.slice_info(loop))
        profile = ctx.path_profiles[loop.key]
        print(f"{loop.header:<14} {behavior.value:<34} "
              f"(iters={profile.iterations}, "
              f"hot={profile.hot_path_probability:.2f})")
    return 0


def _resolve_arbitration(max_error, fidelity_file, command):
    """``--max-error``/``--fidelity-file`` -> arbitration spec or None.

    Shared by ``repro sweep`` and ``repro explore``: both route exact
    evaluations through the same engine, so both accept the same
    bounded-error model-arbitration knobs.
    """
    if max_error is None:
        if fidelity_file:
            raise CLIError("--fidelity-file does nothing without "
                           "--max-error")
        return None
    from repro.fidelity import (
        ModelArbiter, latest_fidelity, load_fidelity,
    )
    fidelity_path = fidelity_file or latest_fidelity()
    if fidelity_path is None:
        raise CLIError(
            "--max-error needs measured error bounds: no "
            "FIDELITY_*.json found (run 'repro validate "
            "--fidelity' first, or pass --fidelity-file)")
    try:
        fidelity = load_fidelity(fidelity_path)
    except (OSError, ValueError) as exc:
        raise CLIError(f"cannot read fidelity file "
                       f"{fidelity_path}: {exc}") from None
    print(f"[{command}] model arbitration on: bounds from "
          f"{fidelity_path}, budget {max_error}", file=sys.stderr)
    return ModelArbiter.from_payload(fidelity, max_error).to_spec()


def _cmd_sweep(args):
    from repro.dse import run_sweep, fig10_table, fig12_table
    from repro.dse.report import (
        render_table, span_summary_table, sweep_failures_table,
        sweep_stats_summary, sweep_stats_table,
    )
    from repro.dse.plots import frontier_plot
    names = args.names or None
    obs_on = (args.obs or bool(args.obs_out)) and not args.no_obs
    if obs_on:
        from repro.obs import enable
        enable(reset=True)
    if args.fault_spec:
        from repro.resilience.faultinject import (
            ENV_VAR, FaultSpecError, parse_fault_spec, reset_plan,
        )
        try:
            parse_fault_spec(args.fault_spec)
        except FaultSpecError as exc:
            raise CLIError(f"--fault-spec: {exc}") from None
        # Through the environment so pool workers inherit the spec.
        os.environ[ENV_VAR] = args.fault_spec
        reset_plan()
    retry_policy = None
    if args.retries is not None:
        from repro.resilience import RetryPolicy
        retry_policy = RetryPolicy(max_attempts=max(1, args.retries + 1))
    if args.resume and args.no_cache:
        raise CLIError("--resume needs the cache (drop --no-cache)")
    arbitration = _resolve_arbitration(args.max_error,
                                       args.fidelity_file, "sweep")
    sweep = run_sweep(names=names, scale=args.scale,
                      with_amdahl=False,
                      workers=args.workers,
                      cache_dir=args.cache_dir,
                      use_cache=not args.no_cache,
                      retry_policy=retry_policy,
                      task_timeout=args.task_timeout,
                      max_pool_restarts=args.max_pool_restarts,
                      resume=args.resume,
                      engine=args.engine,
                      arbitration=arbitration,
                      progress=lambda n: print("  ...", n,
                                               file=sys.stderr))
    if arbitration is not None:
        from repro.dse.report import arbitration_table
        print("[sweep] model arbitration decisions:", file=sys.stderr)
        print(render_table(arbitration_table(sweep)), file=sys.stderr)
    summary = sweep_stats_summary(sweep)
    extras = ""
    if summary["resumed"]:
        extras += f", resumed={summary['resumed']}"
    if summary["failures"]:
        extras += f", failures={summary['failures']}"
    print(f"[sweep] {summary['benchmarks']} benchmarks in "
          f"{summary['total_seconds']:.1f}s "
          f"(workers={summary['workers']}, "
          f"cache hits={summary['cache_hits']}, "
          f"misses={summary['cache_misses']}{extras}, "
          f"dir={summary['cache_dir']})", file=sys.stderr)
    if summary["failures"]:
        print("[sweep] failed benchmarks (artifact covers the "
              "survivors):", file=sys.stderr)
        print(render_table(sweep_failures_table(sweep)),
              file=sys.stderr)
    if args.timings:
        print(render_table(sweep_stats_table(sweep)), file=sys.stderr)
        if obs_on:
            print("[sweep] slowest spans:", file=sys.stderr)
            print(render_table(span_summary_table(top=10)),
                  file=sys.stderr)
    if args.obs_out:
        from repro.obs import write_chrome_trace
        write_chrome_trace(args.obs_out, label="repro sweep")
        print(f"[sweep] trace written to {args.obs_out}",
              file=sys.stderr)
    print("== Fig 10: tradeoffs ==")
    print(render_table(fig10_table(sweep)))
    rows = fig12_table(sweep)
    print("\n== Fig 12: 64 design points ==")
    print(render_table(rows, columns=("design", "speedup",
                                      "energy_eff", "area")))
    from repro.dse.report import frontier_table
    print("\n== Pareto frontier (speedup x energy efficiency) ==")
    print(render_table(frontier_table(rows),
                       columns=("frontier_rank", "design", "speedup",
                                "energy_eff", "area")))
    print("\n== energy-performance space ==")
    print(frontier_plot(rows))
    if args.dump_recorder:
        from repro.obs import dump_blackbox
        path = dump_blackbox("dump-recorder")
        if path is not None:
            print(f"[sweep] flight recorder dumped to {path}",
                  file=sys.stderr)
    return 0


def _cmd_explore(args):
    from repro.explore import (
        dumps_explore, run_explore, write_explore,
    )
    from repro.explore.artifact import format_explore
    from repro.explore.space import DesignSpace

    benchmarks = tuple(args.names) if args.names else ("conv",)
    if args.paper:
        space = DesignSpace.paper(
            max_invocations=(args.max_invocations,))
    else:
        space = DesignSpace()
    arbitration = _resolve_arbitration(args.max_error,
                                       args.fidelity_file, "explore")

    train_records = None
    if args.train_from:
        import json
        try:
            with open(args.train_from) as handle:
                train_records = [json.loads(line)
                                 for line in handle if line.strip()]
        except (OSError, ValueError) as exc:
            raise CLIError(f"cannot read training records "
                           f"{args.train_from}: {exc}") from None
        print(f"[explore] warm-starting the surrogate from "
              f"{len(train_records)} cache records", file=sys.stderr)

    optional = {}
    if args.explore_fraction is not None:
        optional["explore_fraction"] = args.explore_fraction
    if args.candidate_pool is not None:
        optional["candidate_pool"] = args.candidate_pool
    payload = run_explore(
        space=space, benchmarks=benchmarks, budget=args.budget,
        seed=args.seed, batch_size=args.batch_size, init=args.init,
        scale=args.scale, workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=None if not args.no_cache else False,
        engine=args.engine, arbitration=arbitration,
        train_records=train_records,
        progress=lambda spent, budget: print(
            f"  ... {spent}/{budget} exact evaluations",
            file=sys.stderr),
        **optional)
    print(format_explore(payload), file=sys.stderr)
    if args.no_write:
        print(dumps_explore(payload), end="")
    else:
        path = write_explore(payload, args.out_dir)
        print(f"[explore] wrote {path}", file=sys.stderr)
    return 0


def _cmd_cache(args):
    from repro.dse.cache import (
        SweepCache, default_cache_dir, export_records,
    )
    import json

    root = args.cache_dir if args.cache_dir else default_cache_dir()
    cache = SweepCache(root)
    if args.cache_command != "export":
        raise CLIError(f"unknown cache command {args.cache_command!r}")
    handle = sys.stdout
    if args.out:
        handle = open(args.out, "w")
    rows = 0
    with_meta = 0
    try:
        for row in export_records(cache):
            rows += 1
            if row["benchmark"] is not None:
                with_meta += 1
            handle.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
    finally:
        if handle is not sys.stdout:
            handle.close()
    destination = args.out if args.out else "stdout"
    print(f"[cache] exported {rows} training records "
          f"({with_meta} with evaluation meta) from {root} "
          f"-> {destination}", file=sys.stderr)
    return 0


def _cmd_bench(args):
    from repro.bench import (
        check_regression, collect_bench, dumps_bench, format_bench,
        latest_bench, load_bench, write_bench,
    )

    sweep_names = tuple(args.sweep_names.split(",")) \
        if args.sweep_names else ("conv",)
    payload = collect_bench(
        workload=args.workload, core=args.core, scale=args.scale,
        reps=args.reps, sweep_names=sweep_names,
        sweep_scale=args.scale, max_invocations=args.max_invocations)
    print(format_bench(payload), file=sys.stderr)

    baseline_path = args.baseline
    if baseline_path == "auto":
        found = latest_bench(args.out_dir)
        baseline_path = str(found) if found is not None else None
        if baseline_path is None:
            print("[bench] no BENCH_*.json baseline found; "
                  "skipping regression check", file=sys.stderr)
    failures = []
    if baseline_path:
        try:
            baseline = load_bench(baseline_path)
        except (OSError, ValueError) as exc:
            raise CLIError(
                f"cannot read baseline {baseline_path}: {exc}"
            ) from None
        failures = check_regression(payload, baseline,
                                    tolerance=args.tolerance)
        for failure in failures:
            print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
        if not failures:
            print(f"[bench] no regression vs {baseline_path} "
                  f"(tolerance {args.tolerance:.0%})",
                  file=sys.stderr)

    if args.no_write:
        print(dumps_bench(payload), end="")
    else:
        path = write_bench(payload, args.out_dir)
        print(f"[bench] wrote {path}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve(args):
    from repro.service import ServiceConfig, serve
    if args.node_name and not args.worker_of:
        raise CLIError("--node-name does nothing without --worker-of")
    config = ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        pool_mode=args.pool, max_pending=args.queue_depth,
        max_jobs=args.max_jobs, cache_dir=args.cache_dir,
        use_cache=not args.no_cache, drain_timeout=args.drain_timeout,
        task_timeout=args.task_timeout,
        max_pool_restarts=args.max_pool_restarts,
        worker_of=args.worker_of, node_name=args.node_name)
    return serve(config)


def _cmd_coordinate(args):
    """``repro coordinate``: drive a sweep over a worker fleet."""
    from repro.cluster import (
        CoordinatorConfig, announce_stderr, run_coordinated,
    )
    from repro.dse import fig10_table
    from repro.dse.report import (
        render_table, sweep_failures_table, sweep_stats_summary,
    )

    if args.fault_spec:
        from repro.resilience.faultinject import (
            ENV_VAR, FaultSpecError, parse_fault_spec, reset_plan,
        )
        try:
            parse_fault_spec(args.fault_spec)
        except FaultSpecError as exc:
            raise CLIError(f"--fault-spec: {exc}") from None
        os.environ[ENV_VAR] = args.fault_spec
        reset_plan()
    arbitration = _resolve_arbitration(args.max_error,
                                       args.fidelity_file, "coordinate")
    config = CoordinatorConfig(
        host=args.host, port=args.port,
        names=args.names or None, scale=args.scale,
        with_amdahl=False, engine=args.engine,
        arbitration=arbitration, cache_dir=args.cache_dir,
        lease_ttl=args.lease_ttl, heartbeat_ttl=args.heartbeat_ttl,
        hedge_after=args.hedge_after, timeout=args.timeout)
    try:
        sweep = run_coordinated(config, announce=announce_stderr)
    except TimeoutError as exc:
        raise CLIError(str(exc)) from None
    except OSError as exc:
        raise CLIError(f"cannot bind {args.host}:{args.port}: "
                       f"{exc}") from None
    summary = sweep_stats_summary(sweep)
    print(f"[coordinate] {summary['benchmarks']} benchmarks resolved "
          f"in {summary['total_seconds']:.1f}s "
          f"(nodes={summary['workers']}, "
          f"cache hits={summary['cache_hits']}, "
          f"computed={summary['cache_misses']}, "
          f"failures={summary['failures']}, "
          f"dir={summary['cache_dir']})", file=sys.stderr)
    if summary["failures"]:
        print("[coordinate] failed benchmarks (artifact covers the "
              "survivors):", file=sys.stderr)
        print(render_table(sweep_failures_table(sweep)),
              file=sys.stderr)
    print("== Fig 10: tradeoffs ==")
    print(render_table(fig10_table(sweep)))
    return 1 if summary["failures"] else 0


def _cmd_obs(args):
    """``repro obs report``: run-history health report."""
    if args.obs_command != "report":
        raise CLIError(f"unknown obs command {args.obs_command!r}")
    from repro.dse.cache import default_cache_dir
    from repro.obs import build_report, format_report

    root = args.cache_dir if args.cache_dir else default_cache_dir()
    report = build_report(root, window=args.window, gate=args.gate)
    print(format_report(report))
    return 1 if (report["regressions"] and args.strict) else 0


def _cmd_profile(args):
    """``repro profile``: sample evaluation stacks, emit folded text."""
    from repro.dse.parallel import make_task, run_tasks
    from repro.dse.sweep import ALL_SUBSETS, DSE_CORES
    from repro.obs import StackProfiler, merge_folded, top_stacks

    names = tuple(args.names) if args.names else ("conv",)
    for name in names:
        _workload(name)
    tasks = [make_task(name, DSE_CORES, ALL_SUBSETS,
                       scale=args.scale, engine=args.engine)
             for name in names]
    parts = []

    def on_result(name, payload, seconds, obs_payload=None):
        folded = (obs_payload or {}).get("profile")
        if folded:
            parts.append(folded)
        print(f"[profile] {name}: {seconds:.2f}s, "
              f"{sum((folded or {}).values())} samples",
              file=sys.stderr)

    # The dispatcher thread is sampled too: with workers the heavy
    # frames live in the pool, but inline runs (workers=1) do the
    # evaluation right here and the task-side profiler covers it.
    with StackProfiler(interval=args.interval) as dispatcher:
        run_tasks(tasks, workers=args.workers, on_result=on_result,
                  profile={"interval": args.interval})
    merged = merge_folded(parts + [dispatcher.folded()])
    total = sum(merged.values())
    if not total:
        print("[profile] no samples collected (work finished under "
              "one sampling interval; try a larger --scale)",
              file=sys.stderr)
    lines = [f"{stack} {count}" for stack, count
             in sorted(merged.items(),
                       key=lambda item: (-item[1], item[0]))]
    text = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"[profile] {total} samples -> {args.out} "
              f"(flamegraph.pl / speedscope ready)", file=sys.stderr)
    else:
        print(text, end="")
    if total:
        print(f"[profile] hottest frames:", file=sys.stderr)
        for leaf, count in top_stacks(merged, n=args.top):
            print(f"[profile]   {count:>6}  {leaf}", file=sys.stderr)
    return 0


def _cmd_validate(args):
    if args.fidelity:
        return _cmd_validate_fidelity(args)
    from repro.validation import table1
    rows = table1(scale=args.scale if args.scale is not None else 0.3)
    print(f"{'Accel.':>8} {'Base':>5} {'P Err.':>7} {'E Err.':>7}")
    for row in rows:
        print(f"{row['accel']:>8} {row['base']:>5} "
              f"{row['perf_err'] * 100:>6.1f}% "
              f"{row['energy_err'] * 100:>6.1f}%")
    return 0


def _cmd_validate_fidelity(args):
    """The fidelity sweep: FIDELITY_<date>.json + regression gate."""
    from repro.fidelity import (
        DEFAULT_BENCHES, DEFAULT_BSAS, DEFAULT_CORES, ModelArbiter,
        check_fidelity, dumps_fidelity, format_fidelity,
        latest_fidelity, load_fidelity, run_fidelity_sweep,
        write_fidelity,
    )
    from repro.dse.report import arbitration_table, render_table
    from repro.fidelity import DEFAULT_SCALE

    benches = tuple(args.benches.split(",")) if args.benches \
        else DEFAULT_BENCHES
    cores = tuple(args.cores.split(",")) if args.cores \
        else DEFAULT_CORES
    bsas = tuple(args.bsas.split(",")) if args.bsas else DEFAULT_BSAS
    scale = args.scale if args.scale is not None else DEFAULT_SCALE
    try:
        payload = run_fidelity_sweep(
            benchmarks=benches, cores=cores, bsas=bsas,
            scale=scale, workers=args.workers,
            progress=lambda n: print("  ...", n, file=sys.stderr))
    except KeyError as exc:
        raise CLIError(str(exc)) from None
    print(format_fidelity(payload), file=sys.stderr)

    baseline = None
    baseline_path = args.baseline
    if baseline_path == "auto":
        found = latest_fidelity(args.out_dir)
        baseline_path = str(found) if found is not None else None
        if baseline_path is None:
            print("[validate] no FIDELITY_*.json baseline found; "
                  "gating against the absolute ceilings only",
                  file=sys.stderr)
    if baseline_path:
        try:
            baseline = load_fidelity(baseline_path)
        except (OSError, ValueError) as exc:
            raise CLIError(
                f"cannot read baseline {baseline_path}: {exc}"
            ) from None
    failures = check_fidelity(payload, baseline,
                              tolerance=args.tolerance)
    for failure in failures:
        print(f"[validate] FIDELITY FAILURE: {failure}",
              file=sys.stderr)
    if not failures:
        against = f" vs {baseline_path}" if baseline_path \
            else " (absolute ceilings)"
        print(f"[validate] fidelity gate passed{against}",
              file=sys.stderr)

    if args.max_error is not None:
        arbiter = ModelArbiter.from_payload(payload, args.max_error)
        print(f"[validate] arbitration under --max-error "
              f"{args.max_error}:", file=sys.stderr)
        print(render_table(arbitration_table(arbiter.to_spec(),
                                             bsas=bsas)),
              file=sys.stderr)

    if args.no_write:
        print(dumps_fidelity(payload), end="")
    else:
        path = write_fidelity(payload, args.out_dir)
        print(f"[validate] wrote {path}", file=sys.stderr)
    return 1 if failures else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TDG modeling and ExoCore exploration "
                    "(ASPLOS 2016 reproduction)")
    from repro import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads")

    p = sub.add_parser("trace", help="trace statistics / trace export")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--out", default=None,
                   help="write a Chrome trace-event JSON file "
                        "(pipeline spans + modeled timeline) instead "
                        "of printing statistics")
    p.add_argument("--core", default="OOO2",
                   help="core config for the modeled timeline "
                        "(with --out; default OOO2)")
    p.add_argument("--bsas", default=None,
                   help="comma-separated BSA subset for the modeled "
                        "timeline (with --out; default: all four)")

    p = sub.add_parser("run", help="evaluate one benchmark")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--bsas", default=None,
                   help="comma-separated subset (default: all four)")
    p.add_argument("--engine", choices=("auto", "object", "fast"),
                   default=None,
                   help="timing-engine implementation (byte-identical "
                        "results; default: $REPRO_ENGINE or auto)")

    p = sub.add_parser("classify", help="behavior taxonomy")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=0.5)

    p = sub.add_parser("sweep", help="design-space exploration")
    p.add_argument("names", nargs="*")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--workers", type=int, default=1,
                   help="benchmark-evaluation process pool width "
                        "(results are identical for any value)")
    p.add_argument("--no-cache", action="store_true",
                   help="force a cold run: neither read nor write "
                        "the on-disk evaluation cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-dse)")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted run of this exact "
                        "sweep from its checkpoint manifest "
                        "(skips finished benchmarks, retries "
                        "failures; needs the cache)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-benchmark wall-clock budget in seconds; "
                        "a benchmark over budget is reported as a "
                        "failure, the rest keep running (needs "
                        "--workers > 1)")
    p.add_argument("--retries", type=int, default=None,
                   help="retries per benchmark after a transient or "
                        "pool failure (default 2)")
    p.add_argument("--max-pool-restarts", type=int, default=2,
                   help="worker-pool deaths tolerated before "
                        "degrading to inline execution")
    p.add_argument("--fault-spec", default=None,
                   help="deterministic fault injection, e.g. "
                        "'crash:task=NAME,flaky:task=NAME' "
                        "(chaos testing; see docs/resilience.md)")
    p.add_argument("--timings", action="store_true",
                   help="print the per-benchmark timing table")
    p.add_argument("--obs", action="store_true",
                   help="record pipeline spans (workers ship theirs "
                        "back; results are unchanged)")
    p.add_argument("--no-obs", action="store_true",
                   help="force span recording off")
    p.add_argument("--obs-out", default=None,
                   help="write the recorded spans as Chrome "
                        "trace-event JSON (implies --obs)")
    p.add_argument("--dump-recorder", action="store_true",
                   help="dump the flight-recorder ring to "
                        "<cache>/blackbox/<trace_id>.json after the "
                        "run (always happens on crash/timeout)")
    p.add_argument("--engine", choices=("auto", "object", "fast"),
                   default=None,
                   help="timing-engine implementation (byte-identical "
                        "results; default: $REPRO_ENGINE or auto)")
    p.add_argument("--max-error", type=float, default=None,
                   help="bounded-error model arbitration: evaluate "
                        "each BSA with the cheapest model whose "
                        "measured fidelity error stays under this "
                        "budget (bounds from --fidelity-file)")
    p.add_argument("--fidelity-file", default=None,
                   help="FIDELITY_<date>.json with measured error "
                        "bounds (default: newest checked-in one)")

    p = sub.add_parser("explore",
                       help="surrogate-assisted design-space search")
    p.add_argument("names", nargs="*",
                   help="benchmarks to geomean over (default: conv)")
    p.add_argument("--budget", type=int, default=64,
                   help="exact-evaluation budget (default 64)")
    p.add_argument("--seed", type=int, default=0,
                   help="exploration seed; same seed + budget -> "
                        "byte-identical EXPLORE payload")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--paper", action="store_true",
                   help="restrict to the 64-point Fig. 12 space "
                        "(4 cores x 16 subsets, nominal frequency "
                        "and sizing) instead of the full "
                        "million-point space")
    p.add_argument("--max-invocations", type=int, default=8,
                   help="invocation window for --paper (default 8)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="exact evaluations per acquisition round "
                        "(default: budget // 5)")
    p.add_argument("--init", type=int, default=None,
                   help="seed-sample size before the first surrogate "
                        "fit (default: 3 * budget // 8)")
    p.add_argument("--explore-fraction", type=float, default=None,
                   help="fraction of each batch spent on the most "
                        "uncertain candidates rather than the "
                        "predicted frontier (default 0.5)")
    p.add_argument("--candidate-pool", type=int, default=None,
                   help="surrogate-ranked candidates per round "
                        "(default 2048)")
    p.add_argument("--train-from", default=None,
                   help="JSONL records from 'repro cache export' to "
                        "warm-start the surrogate")
    p.add_argument("--workers", type=int, default=1,
                   help="sweep-engine pool width (payload is "
                        "byte-identical for any value)")
    p.add_argument("--no-cache", action="store_true",
                   help="force cold exact evaluations")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-dse)")
    p.add_argument("--engine", choices=("auto", "object", "fast"),
                   default=None,
                   help="timing-engine implementation (byte-identical "
                        "results; default: $REPRO_ENGINE or auto)")
    p.add_argument("--max-error", type=float, default=None,
                   help="bounded-error model arbitration for the "
                        "exact evaluations (see 'repro sweep')")
    p.add_argument("--fidelity-file", default=None,
                   help="FIDELITY_<date>.json with measured error "
                        "bounds (default: newest checked-in one)")
    p.add_argument("--out-dir", default=".",
                   help="directory for EXPLORE_<date>.json (default .)")
    p.add_argument("--no-write", action="store_true",
                   help="print the payload to stdout instead of "
                        "writing EXPLORE_<date>.json")

    p = sub.add_parser("cache", help="sweep-cache maintenance")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    p = cache_sub.add_parser(
        "export",
        help="dump the cache as JSONL surrogate-training records")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-dse)")
    p.add_argument("--out", default=None,
                   help="output file (default: stdout)")

    p = sub.add_parser("bench",
                       help="perf-trajectory smoke benchmark")
    p.add_argument("--workload", default="conv",
                   help="smoke workload (default conv)")
    p.add_argument("--core", default="OOO2",
                   help="core config to time (default OOO2)")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--reps", type=int, default=5,
                   help="repetitions per stage; minimum is reported")
    p.add_argument("--max-invocations", type=int, default=2)
    p.add_argument("--sweep-names", default=None,
                   help="comma-separated benchmarks for the sweep-"
                        "throughput stage (default: conv)")
    p.add_argument("--out-dir", default=".",
                   help="directory for BENCH_<date>.json (default .)")
    p.add_argument("--no-write", action="store_true",
                   help="print the payload to stdout instead of "
                        "writing BENCH_<date>.json")
    p.add_argument("--baseline", default=None,
                   help="BENCH file to gate against ('auto' picks the "
                        "newest BENCH_*.json in --out-dir); any "
                        "regression exits 1")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="fractional ratio drop tolerated before a "
                        "regression is flagged (default 0.30)")

    p = sub.add_parser("validate",
                       help="Table 1 validation / fidelity sweep")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale (default 0.3, or 0.2 with "
                        "--fidelity)")
    p.add_argument("--fidelity", action="store_true",
                   help="run the systematic fidelity sweep and emit "
                        "the canonical FIDELITY_<date>.json instead "
                        "of the Table 1 summary")
    p.add_argument("--benches", default=None,
                   help="comma-separated benchmarks for --fidelity "
                        "(default: the checked-in slice)")
    p.add_argument("--cores", default=None,
                   help="comma-separated cores for the engine-vs-"
                        "cycle tier (default IO2,OOO2,OOO4)")
    p.add_argument("--bsas", default=None,
                   help="comma-separated BSAs for the fast-vs-"
                        "detailed tier (default: all four)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for --fidelity (payload "
                        "is byte-identical for any value)")
    p.add_argument("--out-dir", default=".",
                   help="directory for FIDELITY_<date>.json "
                        "(default .)")
    p.add_argument("--no-write", action="store_true",
                   help="print the payload to stdout instead of "
                        "writing FIDELITY_<date>.json")
    p.add_argument("--baseline", default=None,
                   help="FIDELITY file to gate against ('auto' picks "
                        "the newest FIDELITY_*.json in --out-dir); "
                        "any regression exits 1")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="fractional error growth tolerated vs the "
                        "baseline (default 0.25)")
    p.add_argument("--max-error", type=float, default=None,
                   help="also print the model-arbitration decisions "
                        "this error budget would produce")

    p = sub.add_parser("obs", help="observability maintenance")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "report",
        help="run-history health report: sweep/serve trends, "
             "artifact trajectories, EWMA regression flags")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory holding runlog.jsonl "
                        "(default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro-dse)")
    p.add_argument("--window", type=int, default=20,
                   help="runs per table (newest last; default 20)")
    p.add_argument("--gate", type=float, default=0.25,
                   help="fractional EWMA drift that flags a "
                        "regression (default 0.25)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any regression is flagged")

    p = sub.add_parser("profile",
                       help="sampling stack profiler over benchmark "
                            "evaluations (collapsed-stack output)")
    p.add_argument("names", nargs="*",
                   help="benchmarks to evaluate (default: conv)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--interval", type=float, default=0.005,
                   help="sampling period in seconds (default 0.005)")
    p.add_argument("--workers", type=int, default=1,
                   help="evaluation pool width; worker-side folded "
                        "stacks are merged into the output")
    p.add_argument("--engine", choices=("auto", "object", "fast"),
                   default=None,
                   help="timing-engine implementation (default: "
                        "$REPRO_ENGINE or auto)")
    p.add_argument("--out", default=None,
                   help="write collapsed stacks to this file "
                        "(default: stdout)")
    p.add_argument("--top", type=int, default=10,
                   help="hottest leaf frames to summarize "
                        "(default 10)")

    p = sub.add_parser("serve", help="HTTP evaluation service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="listen port (0 picks a free one)")
    p.add_argument("--workers", type=int, default=2,
                   help="warm evaluation workers")
    p.add_argument("--pool", choices=("process", "thread"),
                   default="process",
                   help="worker pool kind (thread: debugging)")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="max in-flight evaluations before 429")
    p.add_argument("--max-jobs", type=int, default=4,
                   help="max concurrently active sweep jobs")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the on-disk evaluation cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-dse)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for in-flight work on "
                        "shutdown")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-evaluation wall-clock budget in "
                        "seconds; over budget kills the worker and "
                        "answers 504")
    p.add_argument("--max-pool-restarts", type=int, default=2,
                   help="worker-pool deaths tolerated before "
                        "degrading to a single-worker pool")
    p.add_argument("--worker-of", default=None, metavar="URL",
                   help="join the coordinator at URL as a fleet "
                        "worker: pull shard leases, evaluate them "
                        "locally, push verified results (the service "
                        "keeps answering its own HTTP traffic too)")
    p.add_argument("--node-name", default=None,
                   help="advertised node name when joining a fleet "
                        "(default: host:pid)")

    p = sub.add_parser("coordinate",
                       help="coordinate a sweep across worker nodes")
    p.add_argument("names", nargs="*",
                   help="benchmarks to sweep (default: all)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8900,
                   help="listen port (0 picks a free one)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--cache-dir", default=None,
                   help="shared store directory (default: "
                        "$REPRO_CACHE_DIR or ~/.cache/repro-dse)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds before an unanswered shard lease "
                        "expires and re-dispatches (default 30)")
    p.add_argument("--heartbeat-ttl", type=float, default=5.0,
                   help="seconds of heartbeat silence before a node "
                        "is evicted and its leases released "
                        "(default 5)")
    p.add_argument("--hedge-after", type=float, default=10.0,
                   help="seconds a shard must have been running "
                        "before an idle node duplicates it "
                        "(straggler hedging; default 10)")
    p.add_argument("--timeout", type=float, default=None,
                   help="overall wall-clock budget; unresolved "
                        "shards past it abort the run (default: "
                        "wait forever)")
    p.add_argument("--engine", choices=("auto", "object", "fast"),
                   default=None,
                   help="timing-engine implementation workers use "
                        "(byte-identical results)")
    p.add_argument("--fault-spec", default=None,
                   help="deterministic fault injection in the "
                        "coordinator process (see docs/cluster.md)")
    p.add_argument("--max-error", type=float, default=None,
                   help="bounded-error model arbitration (see "
                        "'repro sweep')")
    p.add_argument("--fidelity-file", default=None,
                   help="FIDELITY_<date>.json with measured error "
                        "bounds (default: newest checked-in one)")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "trace": _cmd_trace,
        "run": _cmd_run,
        "classify": _cmd_classify,
        "sweep": _cmd_sweep,
        "explore": _cmd_explore,
        "cache": _cmd_cache,
        "bench": _cmd_bench,
        "validate": _cmd_validate,
        "serve": _cmd_serve,
        "coordinate": _cmd_coordinate,
        "obs": _cmd_obs,
        "profile": _cmd_profile,
    }[args.command]
    # Every CLI entry point is a distributed-trace root: spans this
    # command records (and requests it issues via ServiceClient)
    # carry one correlating trace id end to end.
    from repro.obs import trace_context
    try:
        with trace_context():
            return handler(args)
    except KeyboardInterrupt:
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        return 1
    except Exception as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        message = str(exc) or type(exc).__name__
        if not isinstance(exc, CLIError):
            message = f"{type(exc).__name__}: {message}"
        print(f"repro {args.command}: error: {message}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
