"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                      enumerate the workload suite (Table 3)
trace NAME                simulate one benchmark, print trace stats
run NAME                  evaluate one benchmark on ExoCores
classify NAME             behavior classes of its loops (Fig. 6)
sweep [NAMES...]          design-space exploration (Figs. 10-13)
validate                  regenerate the Table 1 validation summary
"""

import argparse
import sys

ALL_BSAS = ("simd", "dp_cgra", "ns_df", "trace_p")


def _cmd_list(_args):
    from repro.workloads import WORKLOADS, SUITE_CATEGORY
    print(f"{'name':<14} {'suite':<12} {'category':<12} description")
    print("-" * 78)
    for name in sorted(WORKLOADS):
        w = WORKLOADS[name]
        print(f"{name:<14} {w.suite:<12} {w.category:<12} "
              f"{w.description}")
    print(f"\n{len(WORKLOADS)} benchmarks across "
          f"{len(SUITE_CATEGORY)} suites")
    return 0


def _cmd_trace(args):
    from repro.workloads import WORKLOADS
    tdg = WORKLOADS[args.name].construct_tdg(scale=args.scale)
    trace = tdg.trace
    print(f"{args.name}: {len(trace)} dynamic instructions, "
          f"{len(tdg.program)} static")
    print(f"loops: {len(tdg.loop_tree)}  "
          f"(roots: {len(tdg.loop_tree.roots)})")
    print(f"memory accesses: {trace.memory_access_count()}")
    print(f"branch mispredicts: {trace.mispredict_count()}")
    counts = sorted(trace.count_opcodes().items(),
                    key=lambda kv: -kv[1])[:10]
    print("top opcodes:", ", ".join(
        f"{op.value}={n}" for op, n in counts))
    return 0


def _cmd_run(args):
    from repro.core_model import core_by_name
    from repro.energy import exocore_area
    from repro.exocore import evaluate_benchmark, oracle_schedule
    from repro.workloads import WORKLOADS

    bsas = tuple(args.bsas.split(",")) if args.bsas else ALL_BSAS
    tdg = WORKLOADS[args.name].construct_tdg(scale=args.scale)
    evaluation = evaluate_benchmark(tdg, name=args.name)
    print(f"{'design':<16} {'cycles':>10} {'nJ':>10} {'speedup':>8} "
          f"{'energyX':>8} {'area':>6}")
    for core in ("IO2", "OOO2", "OOO4", "OOO6"):
        base = evaluation.baseline(core)
        schedule = oracle_schedule(evaluation, core, bsas)
        area = exocore_area(core_by_name(core), bsas)
        print(f"{core + '-Exo':<16} {schedule.cycles:>10} "
              f"{schedule.energy_pj / 1000:>10.1f} "
              f"{base.cycles / schedule.cycles:>8.2f} "
              f"{base.energy_pj / schedule.energy_pj:>8.2f} "
              f"{area:>6.2f}")
    schedule = oracle_schedule(evaluation, "OOO2", bsas)
    print("\nOOO2 assignment:")
    for key, unit in sorted(schedule.assignment.items()):
        print(f"  {key[0]}/{key[1]:<14} -> {unit}")
    return 0


def _cmd_classify(args):
    from repro.accel import AnalysisContext
    from repro.analysis import classify_loop
    from repro.workloads import WORKLOADS
    tdg = WORKLOADS[args.name].construct_tdg(scale=args.scale)
    ctx = AnalysisContext(tdg)
    for loop in ctx.forest:
        if not loop.is_inner:
            continue
        behavior = classify_loop(ctx.dep_info(loop),
                                 ctx.path_profiles[loop.key],
                                 ctx.slice_info(loop))
        profile = ctx.path_profiles[loop.key]
        print(f"{loop.header:<14} {behavior.value:<34} "
              f"(iters={profile.iterations}, "
              f"hot={profile.hot_path_probability:.2f})")
    return 0


def _cmd_sweep(args):
    from repro.dse import run_sweep, fig10_table, fig12_table
    from repro.dse.report import (
        render_table, sweep_stats_summary, sweep_stats_table,
    )
    from repro.dse.plots import frontier_plot
    names = args.names or None
    sweep = run_sweep(names=names, scale=args.scale,
                      with_amdahl=False,
                      workers=args.workers,
                      cache_dir=args.cache_dir,
                      use_cache=not args.no_cache,
                      progress=lambda n: print("  ...", n,
                                               file=sys.stderr))
    summary = sweep_stats_summary(sweep)
    print(f"[sweep] {summary['benchmarks']} benchmarks in "
          f"{summary['total_seconds']:.1f}s "
          f"(workers={summary['workers']}, "
          f"cache hits={summary['cache_hits']}, "
          f"misses={summary['cache_misses']}, "
          f"dir={summary['cache_dir']})", file=sys.stderr)
    if args.timings:
        print(render_table(sweep_stats_table(sweep)), file=sys.stderr)
    print("== Fig 10: tradeoffs ==")
    print(render_table(fig10_table(sweep)))
    rows = fig12_table(sweep)
    print("\n== Fig 12: 64 design points ==")
    print(render_table(rows, columns=("design", "speedup",
                                      "energy_eff", "area")))
    print("\n== energy-performance space ==")
    print(frontier_plot(rows))
    return 0


def _cmd_validate(args):
    from repro.validation import table1
    rows = table1(scale=args.scale)
    print(f"{'Accel.':>8} {'Base':>5} {'P Err.':>7} {'E Err.':>7}")
    for row in rows:
        print(f"{row['accel']:>8} {row['base']:>5} "
              f"{row['perf_err'] * 100:>6.1f}% "
              f"{row['energy_err'] * 100:>6.1f}%")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TDG modeling and ExoCore exploration "
                    "(ASPLOS 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads")

    p = sub.add_parser("trace", help="trace statistics")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=1.0)

    p = sub.add_parser("run", help="evaluate one benchmark")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--bsas", default=None,
                   help="comma-separated subset (default: all four)")

    p = sub.add_parser("classify", help="behavior taxonomy")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=0.5)

    p = sub.add_parser("sweep", help="design-space exploration")
    p.add_argument("names", nargs="*")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--workers", type=int, default=1,
                   help="benchmark-evaluation process pool width "
                        "(results are identical for any value)")
    p.add_argument("--no-cache", action="store_true",
                   help="force a cold run: neither read nor write "
                        "the on-disk evaluation cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-dse)")
    p.add_argument("--timings", action="store_true",
                   help="print the per-benchmark timing table")

    p = sub.add_parser("validate", help="Table 1 validation")
    p.add_argument("--scale", type=float, default=0.3)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "trace": _cmd_trace,
        "run": _cmd_run,
        "classify": _cmd_classify,
        "sweep": _cmd_sweep,
        "validate": _cmd_validate,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
