"""Non-Speculative Dataflow model (SEED/Wavescalar-like, section 3.2).

Analyzer: fully-inlinable loop nests (no calls) whose CFU schedule fits
the hardware budget of 256 static compound instructions.

Transformer: operates at basic-block granularity —

- compute chains fuse into compound-FU instructions;
- branches become ``switch`` (control-steering) instructions, and every
  instruction carries a control dependence on the latest switch (the
  non-speculative cost: work waits for control);
- loads/stores issue from the accelerator's own cache interface;
- a writeback-bus capacity of 2 values/cycle is enforced;
- entry/exit edges model live-value transfer.

The core pipeline is power-gated while NS-DF runs (energy side), which
is why NS-DF's energy gain exceeds its time gain in paper Fig. 13.
"""

from repro.isa.opcodes import Opcode, is_compute
from repro.accel.base import BSAModel, CFUFolder, apply_dataflow_latency
from repro.analysis.cfu import schedule_cfus
from repro.tdg.engine import AccelResources

#: Hardware budget: static compound instructions (paper: "targets
#: inlined nested loops with 256 static compound instructions").
STATIC_CFU_BUDGET = 256

#: Writeback-bus width (values per cycle).
WRITEBACK_BUS = 2

#: In-flight instruction window (operand storage entries).
OPERAND_STORAGE = 256

#: Switch (control-steering) latency.
SWITCH_LATENCY = 1

#: Max ops fused per compound FU.
MAX_CFU_SIZE = 4

#: Operand forwarding latency between dataflow units (writeback bus
#: arbitration + tag match; SEED-style distributed fabric).
DATAFLOW_EDGE_LATENCY = 2


class NSDataflowModel(BSAModel):
    """Non-speculative dataflow offload BSA."""

    name = "ns_df"
    power_gates_core = True

    def accel_resources(self, core_config):
        # Operand storage bounds the in-flight dataflow window.
        return AccelResources({self.name: WRITEBACK_BUS},
                              windows={self.name: OPERAND_STORAGE})

    @property
    def switch_latency(self):
        """Detailed reference charges full control-steering latency."""
        return 2 if self.detailed else SWITCH_LATENCY

    def region_entry_overhead(self, plan):
        overhead = 4 + plan.get("live_ins", 4)
        return 2 * overhead if self.detailed else overhead

    def find_candidates(self, ctx):
        plans = {}
        for loop in ctx.forest:
            profile = ctx.path_profiles.get(loop.key)
            if profile is None or profile.iterations < 2:
                continue
            has_call = any(
                inst.opcode in (Opcode.CALL, Opcode.RET)
                for inst in loop.instructions()
            )
            if has_call:
                continue
            schedule = schedule_cfus(loop, max_cfu_size=MAX_CFU_SIZE,
                                     cross_control=False)
            static_total = loop.static_size()
            if schedule.compound_count > STATIC_CFU_BUDGET \
                    or static_total > 2 * STATIC_CFU_BUDGET:
                continue
            plans[loop.key] = {
                "loop": loop,
                "schedule": schedule,
                "profile": profile,
                "live_ins": min(8, max(2, static_total // 16)),
            }
        return plans

    def estimate_speedup(self, ctx, plan, core_config):
        from repro.analysis.behavior import dataflow_ilp
        from repro.isa.opcodes import Opcode
        loop = plan["loop"]
        ilp = dataflow_ilp(loop)
        # Dataflow wins by cheap issue width and window: big on narrow
        # cores, washed out on wide OOO.
        issue_gain = {1: 1.6, 2: 1.2, 4: 0.9, 6: 0.8, 8: 0.7}.get(
            core_config.width, 1.0)
        if core_config.in_order:
            issue_gain *= 1.3
        # Non-speculative: work waits for control steering, so dense
        # control discounts the estimate (paper Table 2 drawback).
        # Uses the dynamic branch density from the profile.
        branch_fraction = plan["profile"].branch_fraction
        control_discount = 1.0 / (1.0 + 8.0 * branch_fraction)
        return max(0.5, min(2.2, 0.7 + 0.3 * ilp) * issue_gain
                   * control_discount)

    # ------------------------------------------------------------------
    def transform_interval(self, ctx, plan, interval, core_config,
                           seq_alloc):
        loop = plan["loop"]
        schedule = plan["schedule"]
        trace = ctx.tdg.trace.instructions
        start, end = interval
        loop_uids = {inst.uid for inst in loop.instructions()}

        stream = []
        seq_map = {}
        folder = CFUFolder(schedule, self.name, seq_alloc, seq_map)
        last_switch = None

        for index in range(start, end):
            dyn = trace[index]
            uid = dyn.uid
            opcode = dyn.opcode
            if uid is None or uid not in loop_uids:
                # Stray instruction (shouldn't happen for call-free
                # nests): keep on core.
                stream.append(_remap(dyn, seq_map))
                continue
            mapped = _map_deps(dyn, seq_map)
            control_edge = ((last_switch, self.switch_latency),) \
                if last_switch is not None else ()

            if opcode is Opcode.BR:
                seq = seq_alloc.next()
                inst = dyn.clone(
                    seq=seq, opcode=Opcode.SWITCH, accel=self.name,
                    src_deps=mapped, extra_deps=control_edge,
                    mispredicted=False, icache_lat=0, lat_override=1)
                stream.append(inst)
                seq_map[dyn.seq] = seq
                last_switch = seq
            elif opcode is Opcode.JMP:
                # Unconditional control is free in dataflow.
                continue
            elif dyn.mem_addr is not None:
                seq = seq_alloc.next()
                inst = dyn.clone(
                    seq=seq, accel=self.name, src_deps=mapped,
                    extra_deps=control_edge, icache_lat=0,
                    mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep))
                stream.append(inst)
                seq_map[dyn.seq] = seq
            elif is_compute(opcode) or opcode in (Opcode.MOV, Opcode.LI):
                inst = folder.process(dyn, mapped)
                if inst is not None:
                    inst.extra_deps = inst.extra_deps + control_edge
                    stream.append(inst)
            else:
                stream.append(_remap(dyn, seq_map))
        latency = DATAFLOW_EDGE_LATENCY + (1 if self.detailed else 0)
        return apply_dataflow_latency(stream, latency)


def _map_deps(dyn, seq_map):
    return tuple(seq_map.get(d, d) for d in dyn.src_deps)


def _remap(dyn, seq_map):
    if any(d in seq_map for d in dyn.src_deps) or dyn.mem_dep in seq_map:
        return dyn.clone(
            src_deps=tuple(seq_map.get(d, d) for d in dyn.src_deps),
            mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep))
    return dyn
