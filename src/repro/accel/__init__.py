"""Behavior-Specialized Accelerator (BSA) models.

Each model is a TDG analyzer + transformer pair (paper Fig. 2): the
analyzer finds legal and profitable regions and builds a "plan"; the
transformer rewrites the region's µDG slice into the combined
core+accelerator TDG, which the timing engine and energy model then
evaluate.

Models (paper Table 2):

- :mod:`repro.accel.fma` — the paper's explanatory example (sec. 2.3)
- :mod:`repro.accel.simd` — short-vector SIMD (auto-vectorization)
- :mod:`repro.accel.dp_cgra` — data-parallel CGRA (DySER-like)
- :mod:`repro.accel.ns_df` — non-speculative dataflow (SEED-like)
- :mod:`repro.accel.trace_p` — trace-speculative processor (BERET-like)
"""

from repro.accel.base import (
    AnalysisContext, BSAModel, RegionEstimate, SeqAllocator,
)
from repro.accel.fma import FmaTransform
from repro.accel.simd import SIMDModel
from repro.accel.dp_cgra import DPCGRAModel
from repro.accel.ns_df import NSDataflowModel
from repro.accel.trace_p import TraceProcessorModel

#: All four design-space BSAs keyed by their short name
#: (paper Fig. 12 letters: S, D, N, T).
BSA_REGISTRY = {
    "simd": SIMDModel,
    "dp_cgra": DPCGRAModel,
    "ns_df": NSDataflowModel,
    "trace_p": TraceProcessorModel,
}

BSA_LETTER = {"simd": "S", "dp_cgra": "D", "ns_df": "N", "trace_p": "T"}

__all__ = [
    "AnalysisContext",
    "BSAModel",
    "RegionEstimate",
    "SeqAllocator",
    "FmaTransform",
    "SIMDModel",
    "DPCGRAModel",
    "NSDataflowModel",
    "TraceProcessorModel",
    "BSA_REGISTRY",
    "BSA_LETTER",
]
