"""Shared machinery for BSA models.

:class:`AnalysisContext` caches the per-TDG analyses (loop forest,
intervals, path profiles, dependence info, slices) so multiple BSA
models share them.  :class:`BSAModel` is the analyzer+transformer
interface; :class:`RegionEstimate` is the per-static-region output the
ExoCore schedulers consume.
"""

from repro.analysis.loops import build_loop_forest
from repro.analysis.memdep import analyze_loop_dependences, iteration_spans
from repro.analysis.pathprof import profile_paths
from repro.analysis.regions import loop_intervals
from repro.analysis.slicing import slice_loop_body
from repro.energy.mcpat import EnergyModel
from repro.tdg.engine import TimingEngine, AccelResources
from repro.tdg.fastpath import make_engine


class SeqAllocator:
    """Fresh sequence ids for transform-synthesized instructions.

    Ids start far above any original trace seq so live-in references to
    original producers never collide.
    """

    _BASE = 1 << 40

    def __init__(self):
        self._next = SeqAllocator._BASE

    def next(self):
        seq = self._next
        self._next += 1
        return seq


def apply_dataflow_latency(stream, latency):
    """Charge *latency* cycles on accelerator-internal dataflow edges.

    Distributed dataflow fabrics (SEED-style writeback bus + tag match)
    do not forward operands for free the way a core's bypass network
    does; deps whose producer is itself a transform-synthesized
    instruction (seq above the allocator base) become delayed edges.
    """
    if not latency:
        return stream
    base = SeqAllocator._BASE
    for inst in stream:
        if inst.accel is None:
            continue
        internal = tuple(d for d in inst.src_deps if d >= base)
        if internal:
            inst.src_deps = tuple(
                d for d in inst.src_deps if d < base)
            inst.extra_deps = inst.extra_deps + tuple(
                (d, latency) for d in internal)
    return stream


class CFUFolder:
    """Folds dynamic instruction instances into compound-FU instances.

    Built from a :class:`~repro.analysis.cfu.CFUSchedule`; feed it
    dynamic compute instructions in trace order and it either returns a
    fresh accelerator CFU instruction (chain head) or folds the
    instruction into the pending compound op (returns None) —
    accumulating latency (serialized compound execution, as in BERET)
    and merging external dependences.
    """

    def __init__(self, schedule, accel_name, seq_alloc, seq_map):
        self.schedule = schedule
        self.accel_name = accel_name
        self.seq_alloc = seq_alloc
        self.seq_map = seq_map
        self._pending = {}   # cfu index -> (inst, next member position)

    def process(self, dyn, mapped_deps):
        """Handle one dynamic compute instruction.

        *mapped_deps* are its already-remapped source deps.  Returns a
        new accel DynInst to append, or None if folded into a pending
        compound instruction.
        """
        from repro.isa.opcodes import Opcode

        uid = dyn.uid
        cfu_index = self.schedule.cfu_of.get(uid)
        members = self.schedule.cfus[cfu_index] \
            if cfu_index is not None else None
        position = members.index(uid) if members else 0

        if members and position > 0:
            pending = self._pending.get(cfu_index)
            if pending is not None and pending[1] == position:
                inst, _ = pending
                external = tuple(
                    d for d in mapped_deps
                    if d != inst.seq and d not in inst.src_deps
                )
                inst.src_deps = inst.src_deps + external
                inst.lat_override = (inst.lat_override or 0) \
                    + dyn.latency
                inst.vector_width += 1
                if position + 1 < len(members):
                    self._pending[cfu_index] = (inst, position + 1)
                else:
                    self._pending.pop(cfu_index, None)
                self.seq_map[dyn.seq] = inst.seq
                return None
        # Chain head (or out-of-order instance): fresh compound inst.
        seq = self.seq_alloc.next()
        inst = dyn.clone(
            seq=seq, opcode=Opcode.CFU, accel=self.accel_name,
            src_deps=mapped_deps, lat_override=dyn.latency,
            vector_width=1, mispredicted=False, icache_lat=0,
        )
        if members and len(members) > 1 and position == 0:
            self._pending[cfu_index] = (inst, 1)
        self.seq_map[dyn.seq] = seq
        return inst


class AnalysisContext:
    """Caches analyses over one TDG, shared across BSA models."""

    def __init__(self, tdg):
        self.tdg = tdg
        self.forest = build_loop_forest(tdg.program)
        self.intervals = loop_intervals(tdg, self.forest)
        self.path_profiles = profile_paths(tdg, self.forest,
                                           self.intervals)
        self._dep_info = {}
        self._slices = {}
        self._iteration_spans = {}
        self._energy_models = {}

    def dep_info(self, loop):
        key = loop.key
        if key not in self._dep_info:
            self._dep_info[key] = analyze_loop_dependences(
                self.tdg, loop, self.intervals.get(key, ()))
        return self._dep_info[key]

    def slice_info(self, loop):
        key = loop.key
        if key not in self._slices:
            self._slices[key] = slice_loop_body(
                self.tdg, loop, self.intervals.get(key, ()))
        return self._slices[key]

    def spans_of(self, loop, interval):
        """Per-iteration spans of one invocation interval (cached)."""
        cache_key = (loop.key, interval)
        if cache_key not in self._iteration_spans:
            start, end = interval
            self._iteration_spans[cache_key] = iteration_spans(
                self.tdg.trace.instructions, loop, start, end)
        return self._iteration_spans[cache_key]

    def energy_model(self, core_config):
        if core_config.name not in self._energy_models:
            self._energy_models[core_config.name] = \
                EnergyModel(core_config)
        return self._energy_models[core_config.name]


class RegionEstimate:
    """Accelerated cost of one static region under one core config."""

    def __init__(self, loop_key, accel_name, cycles, energy_pj,
                 dyn_insts, invocations, accel_cycles=None):
        self.loop_key = loop_key
        self.accel_name = accel_name
        self.cycles = cycles
        self.energy_pj = energy_pj
        self.dyn_insts = dyn_insts
        self.invocations = invocations
        # Cycles actually spent in accelerated mode (== cycles unless
        # part of the region replays on the core).
        self.accel_cycles = accel_cycles if accel_cycles is not None \
            else cycles

    def __repr__(self):
        return (f"<RegionEstimate {self.accel_name}@{self.loop_key}: "
                f"{self.cycles} cyc, {self.energy_pj/1000:.1f} nJ>")


class BSAModel:
    """Base class: one behavior-specialized accelerator model.

    Subclasses set :attr:`name`, implement :meth:`find_candidates`
    (returns {loop_key: plan}) and :meth:`transform_interval` (returns
    the transformed instruction stream for one invocation), and may
    override the resource/energy hooks.
    """

    #: Short name; also the ``accel`` tag on transformed instructions.
    name = None

    #: Cycles charged at each region entry (configuration check,
    #: live-value transfer); refined per model.
    entry_overhead = 0

    #: Whether the BSA powers down the core pipeline while active.
    power_gates_core = False

    #: Fast mode uses the paper's approximations; detailed mode is the
    #: validation reference (finer contention, exact latencies).
    def __init__(self, detailed=False):
        self.detailed = detailed

    # -- analyzer ------------------------------------------------------
    def find_candidates(self, ctx):
        """Map loop_key -> plan for every legal+profitable region."""
        raise NotImplementedError

    # -- transformer -----------------------------------------------------
    def transform_interval(self, ctx, plan, interval, core_config,
                           seq_alloc):
        """Rewrite one invocation's trace slice; returns the new
        stream (list of DynInst)."""
        raise NotImplementedError

    def accel_resources(self, core_config):
        """Resource tables for the engine (override per model)."""
        return None

    def region_entry_overhead(self, plan):
        """Cycles charged per region entry (configuration check, live
        value transfer).  Default: the class attribute."""
        return self.entry_overhead

    def estimate_speedup(self, ctx, plan, core_config):
        """Approximate speedup from static/profile information only —
        what a profile-based compiler would embed in the binary for the
        Amdahl-tree scheduler (paper section 3.3).  Deliberately rough;
        must NOT consult measured TDG timing."""
        return 1.0

    # -- evaluation ------------------------------------------------------
    def evaluate_region(self, ctx, plan, core_config,
                        max_invocations=None, engine=None):
        """Evaluate all invocations of one static region.

        Returns a :class:`RegionEstimate`; invocation costs beyond
        *max_invocations* are extrapolated from the evaluated mean.
        *engine* picks the timing engine implementation (see
        :func:`repro.tdg.fastpath.resolve_engine`); results are
        byte-identical either way.
        """
        loop = plan["loop"]
        key = loop.key
        intervals = ctx.intervals.get(key, ())
        if not intervals:
            return None
        evaluated = intervals if max_invocations is None \
            else intervals[:max_invocations]
        seq_alloc = SeqAllocator()
        energy_model = ctx.energy_model(core_config)
        entry_overhead = self.region_entry_overhead(plan)
        total_cycles = 0
        total_energy = 0.0
        total_accel_cycles = 0
        for interval in evaluated:
            stream = self.transform_interval(ctx, plan, interval,
                                             core_config, seq_alloc)
            result = make_engine(
                core_config, engine,
                accel_resources=self.accel_resources(core_config),
                detailed=self.detailed,
            ).run(stream)
            cycles = result.cycles + entry_overhead
            breakdown = energy_model.evaluate(
                stream, cycles,
                core_active=not self.power_gates_core,
                active_accels=(self.name,),
            )
            total_cycles += cycles
            total_energy += breakdown.total_pj
            total_accel_cycles += cycles
        if len(evaluated) < len(intervals):
            scale = len(intervals) / len(evaluated)
            total_cycles = int(total_cycles * scale)
            total_energy *= scale
            total_accel_cycles = int(total_accel_cycles * scale)
        dyn = sum(end - start for start, end in intervals)
        return RegionEstimate(key, self.name, total_cycles, total_energy,
                              dyn, len(intervals))
