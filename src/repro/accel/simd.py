"""Short-vector SIMD model (loop auto-vectorization).

Analyzer (paper section 3.2, "SIMD TDG"):

- inner loops only, with inter-iteration memory/data dependence checks
  from :mod:`repro.analysis.memdep` (inductions and reductions allowed);
- if-conversion profitability: reject if the if-converted body exceeds
  twice the observed dynamic instructions per iteration;
- needs at least one full vector of iterations.

Transformer: buffers ``vector_len`` iterations; the first iteration
becomes the vectorized version; not-taken-path instructions and
mask/predicate (vblend) instructions are inserted; non-contiguous
memory operations are scalar-expanded (no scatter/gather hardware);
memory latency is remapped onto the vectorized iteration (worst of the
group); remaining iterations are elided.  Leftover iterations below the
vector length stay scalar.
"""

import math

from repro.isa.opcodes import (
    Opcode, is_compute, vector_opcode_for,
)
from repro.accel.base import BSAModel

#: Memory-level severity order for remapping the group's worst latency.
_LEVEL_RANK = {None: 0, "l1": 1, "l2": 2, "dram": 3}

#: If-converted body may be at most this factor of the dynamic
#: instructions per iteration (paper: "more than twice the original").
_IF_CONVERT_LIMIT = 2.0


class SIMDModel(BSAModel):
    """Auto-vectorizing SIMD BSA."""

    name = "simd"
    entry_overhead = 0
    power_gates_core = False

    def find_candidates(self, ctx):
        plans = {}
        for loop in ctx.forest:
            if not loop.is_inner:
                continue
            profile = ctx.path_profiles.get(loop.key)
            if profile is None or profile.iterations < 8:
                continue
            dep = ctx.dep_info(loop)
            if not dep.vectorizable:
                continue
            union_size = sum(
                1 for inst in loop.instructions()
                if inst.opcode not in (Opcode.BR, Opcode.JMP)
            )
            expected = profile.insts_per_iteration
            if expected and union_size > _IF_CONVERT_LIMIT * expected:
                continue
            if profile.average_trip_count < 4:
                continue
            plans[loop.key] = {
                "loop": loop,
                "dep": dep,
                "profile": profile,
            }
        return plans

    def estimate_speedup(self, ctx, plan, core_config):
        dep = plan["dep"]
        vl = core_config.vector_len
        contiguous = dep.contiguous_fraction()
        # Masking / scalar-expansion discount from the loop's control.
        blocks = len(plan["loop"].blocks)
        control_discount = 1.0 / (1.0 + 0.25 * max(0, blocks - 1))
        return max(1.0, (1.0 + (vl - 1) * contiguous * 0.8)
                   * control_discount)

    # ------------------------------------------------------------------
    def transform_interval(self, ctx, plan, interval, core_config,
                           seq_alloc):
        loop = plan["loop"]
        dep = plan["dep"]
        trace = ctx.tdg.trace.instructions
        vector_len = core_config.vector_len
        spans = ctx.spans_of(loop, interval)
        loop_uids = {inst.uid for inst in loop.instructions()}
        latch_uids = {
            inst.uid for inst in loop.instructions()
            if inst.opcode is Opcode.BR and inst.target == loop.header
        }

        # If-conversion executes every path: static body ops with no
        # instance in a group are emitted as masked (pad) vector ops.
        body_uids = {
            inst.uid for inst in loop.instructions()
            if inst.opcode not in (Opcode.BR, Opcode.JMP)
        }

        stream = []
        seq_map = {}
        reduction_tail = {}   # reduction uid -> last vector seq

        index = 0
        while index < len(spans):
            group = spans[index:index + vector_len]
            if len(group) < vector_len:
                # Leftover iterations stay scalar, deps remapped.
                for span_start, span_end in group:
                    for i in range(span_start, span_end):
                        dyn = trace[i]
                        stream.append(self._remap_scalar(dyn, seq_map))
                break
            self._vectorize_group(
                trace, group, loop_uids, latch_uids, dep, vector_len,
                stream, seq_map, seq_alloc, reduction_tail, body_uids,
            )
            index += vector_len

        # Horizontal reductions after the loop.
        steps = max(1, int(math.log2(vector_len)))
        for uid, tail_seq in reduction_tail.items():
            static = ctx.tdg.program.instruction(uid)
            prev = tail_seq
            for _ in range(steps):
                seq = seq_alloc.next()
                stream.append(trace[0].clone(
                    seq=seq, static=static, opcode=static.opcode,
                    src_deps=(prev,), mem_dep=None, mem_addr=None,
                    mem_lat=0, mem_level=None, taken=None,
                    mispredicted=False, icache_lat=0,
                    vector_width=1, extra_deps=(), lat_override=None,
                ))
                prev = seq
        return stream

    # ------------------------------------------------------------------
    @staticmethod
    def _remap_scalar(dyn, seq_map):
        if any(d in seq_map for d in dyn.src_deps) \
                or (dyn.mem_dep in seq_map):
            return dyn.clone(
                src_deps=tuple(seq_map.get(d, d) for d in dyn.src_deps),
                mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep),
            )
        return dyn

    def _vectorize_group(self, trace, group, loop_uids, latch_uids, dep,
                         vector_len, stream, seq_map, seq_alloc,
                         reduction_tail, body_uids):
        # Gather instances per static uid across the group.
        instances = {}
        order = []
        for span_start, span_end in group:
            for i in range(span_start, span_end):
                dyn = trace[i]
                uid = dyn.uid
                if uid is None or uid not in loop_uids:
                    # Stray (callee) instruction: keep scalar.
                    stream.append(self._remap_scalar(dyn, seq_map))
                    continue
                if uid not in instances:
                    instances[uid] = []
                    order.append(uid)
                instances[uid].append(dyn)
        # Emit in static program order for determinism.
        order.sort(key=lambda u: (instances[u][0].static.block.index,
                                  instances[u][0].static.index))

        def map_deps(dyn, new_seq):
            deps = []
            for d in dyn.src_deps:
                mapped = seq_map.get(d, d)
                if mapped != new_seq:
                    deps.append(mapped)
            return tuple(deps)

        for uid in order:
            group_insts = instances[uid]
            rep = group_insts[0]
            static = rep.static
            opcode = rep.opcode
            new_seq = seq_alloc.next()

            if uid in latch_uids:
                # One back-branch per vector group.
                last = group_insts[-1]
                inst = last.clone(
                    seq=new_seq, src_deps=map_deps(last, new_seq))
                stream.append(inst)
            elif opcode is Opcode.BR:
                # If-converted: branch becomes a mask-merge (vblend).
                inst = rep.clone(
                    seq=new_seq, opcode=Opcode.VBLEND, taken=None,
                    mispredicted=False, vector_width=vector_len,
                    src_deps=map_deps(rep, new_seq))
                stream.append(inst)
                if self.detailed:
                    # Reference model: separate mask-maintenance op.
                    stream.append(inst.clone(seq=seq_alloc.next(),
                                             src_deps=(new_seq,)))
            elif uid in dep.induction_uids:
                # One induction update per group (stride folded).
                last = group_insts[-1]
                inst = last.clone(
                    seq=new_seq, src_deps=map_deps(last, new_seq))
                stream.append(inst)
            elif rep.mem_addr is not None:
                self._vectorize_memory(
                    uid, group_insts, dep, vector_len, stream,
                    seq_map, seq_alloc, new_seq, map_deps)
                continue   # seq_map handled inside
            elif uid in dep.reduction_uids and static is not None \
                    and static.opcode is not Opcode.MOV:
                vop = vector_opcode_for(opcode) or opcode
                inst = rep.clone(
                    seq=new_seq, opcode=vop, vector_width=vector_len,
                    src_deps=map_deps(rep, new_seq))
                stream.append(inst)
                reduction_tail[uid] = new_seq
            elif is_compute(opcode) or opcode is Opcode.MOV:
                vop = vector_opcode_for(opcode)
                if vop is not None or opcode in (Opcode.MOV, Opcode.LI):
                    inst = rep.clone(
                        seq=new_seq, opcode=vop or opcode,
                        vector_width=vector_len,
                        src_deps=map_deps(rep, new_seq))
                    stream.append(inst)
                else:
                    # No vector twin (div/sqrt/...): scalar expansion.
                    prev_seq = None
                    for lane, inst in enumerate(group_insts):
                        lane_seq = new_seq if lane == 0 \
                            else seq_alloc.next()
                        clone = inst.clone(
                            seq=lane_seq,
                            src_deps=map_deps(inst, lane_seq))
                        stream.append(clone)
                        prev_seq = lane_seq
                    for inst in group_insts:
                        seq_map[inst.seq] = prev_seq
                    continue
            else:
                # jmp / other control: once per group.
                inst = rep.clone(seq=new_seq,
                                 src_deps=map_deps(rep, new_seq))
                stream.append(inst)

            for dyn in group_insts:
                seq_map[dyn.seq] = new_seq

        # Masking penalty: body ops from not-taken paths still occupy
        # vector lanes after if-conversion (Table 2: "masking/
        # predicated inst penalty").  One masked op per absent static.
        template = None
        for span_start, span_end in group:
            if span_end > span_start:
                template = trace[span_start]
                break
        if template is not None:
            for uid in body_uids:
                if uid in instances:
                    continue
                stream.append(template.clone(
                    seq=seq_alloc.next(), opcode=Opcode.VBLEND,
                    src_deps=(), mem_dep=None, mem_addr=None,
                    mem_lat=0, mem_level=None, taken=None,
                    mispredicted=False, icache_lat=0, extra_deps=(),
                    lat_override=1, vector_width=vector_len))

    def _vectorize_memory(self, uid, group_insts, dep, vector_len,
                          stream, seq_map, seq_alloc, new_seq,
                          map_deps):
        rep = group_insts[0]
        stride = dep.stride_of(uid)
        if stride == 1:
            # Contiguous: a single vector load/store with the group's
            # worst latency remapped on (paper: "memory latency
            # information is re-mapped onto the vectorized iteration").
            # The detailed reference model charges an extra cycle for
            # the wide access (bank conflicts); the fast model is
            # optimistic, as the paper's SIMD model deliberately is.
            worst = max(group_insts, key=lambda d: d.mem_lat)
            vop = Opcode.VLD if rep.static.is_load else Opcode.VST
            extra = 1 if self.detailed else 0
            inst = rep.clone(
                seq=new_seq, opcode=vop, vector_width=vector_len,
                mem_lat=worst.mem_lat + extra, mem_level=worst.mem_level,
                src_deps=map_deps(rep, new_seq),
                mem_dep=seq_map.get(rep.mem_dep, rep.mem_dep))
            stream.append(inst)
            for dyn in group_insts:
                seq_map[dyn.seq] = new_seq
            return
        # Non-contiguous: scalar expansion plus a pack/unpack op.
        lane_seqs = []
        for lane, dyn in enumerate(group_insts):
            lane_seq = new_seq if lane == 0 else seq_alloc.next()
            stream.append(dyn.clone(
                seq=lane_seq, src_deps=map_deps(dyn, lane_seq),
                mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep)))
            lane_seqs.append(lane_seq)
        pack_seq = seq_alloc.next()
        stream.append(rep.clone(
            seq=pack_seq, opcode=Opcode.VBLEND, mem_addr=None,
            mem_lat=0, mem_level=None, vector_width=vector_len,
            src_deps=tuple(lane_seqs), mem_dep=None))
        target = pack_seq if rep.static.is_load else lane_seqs[-1]
        for dyn in group_insts:
            seq_map[dyn.seq] = target
