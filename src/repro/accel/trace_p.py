"""Trace-Speculative Processor model (BERET-like + dataflow, sec 3.2).

Analyzer: inner loops with loop-back probability above 80% and a
configuration that fits the hardware limit; the hot path comes from
path profiling.  Compound instructions may cross control boundaries
(so Trace-P fuses larger CFUs than NS-DF, paper Table 2).

Transformer: iterations following the hot path run speculatively on
the accelerator — branches become cheap verify ops with *no* control
dependences; stores go to an iteration-versioned store buffer.
Iterations that diverge from the hot trace mispeculate: their work is
replayed on the general core behind a flush penalty, and the trace
engine restarts.
"""

from repro.isa.opcodes import Opcode, is_compute
from repro.accel.base import BSAModel, CFUFolder, apply_dataflow_latency
from repro.analysis.cfu import schedule_cfus
from repro.analysis.memdep import iteration_spans
from repro.tdg.engine import AccelResources

#: Minimum loop-back probability (paper: "higher than 80%").
LOOP_BACK_THRESHOLD = 0.80

#: Static compound-instruction budget (half of NS-DF's operand storage,
#: but larger CFUs, per Table 2).
STATIC_CFU_BUDGET = 128

#: Max ops per compound instruction (crosses control boundaries).
MAX_CFU_SIZE = 6

#: Writeback capacity (values/cycle).
WRITEBACK_BUS = 2

#: In-flight window: half of NS-DF's operand storage (paper 3.1).
OPERAND_STORAGE = 128

#: Flush + restart penalty on a trace mispeculation (cycles).
MISPEC_PENALTY = 8

#: Minimum fraction of iterations on the hot path for profitability.
HOT_PATH_THRESHOLD = 0.50

#: Operand forwarding latency between dataflow CFUs (shared writeback
#: bus arbitration, as in the SEED/BERET-style fabrics).
DATAFLOW_EDGE_LATENCY = 1


class TraceProcessorModel(BSAModel):
    """Trace-speculative dataflow BSA."""

    name = "trace_p"
    power_gates_core = True

    def accel_resources(self, core_config):
        # Half of NS-DF's operand storage (paper section 3.1).
        return AccelResources({self.name: WRITEBACK_BUS},
                              windows={self.name: OPERAND_STORAGE})

    @property
    def mispec_penalty(self):
        """Detailed reference models the full flush + trace-cache
        refill; the fast model uses the nominal penalty."""
        return 14 if self.detailed else MISPEC_PENALTY

    def region_entry_overhead(self, plan):
        overhead = 4 + plan.get("live_ins", 2)
        return 2 * overhead if self.detailed else overhead

    def find_candidates(self, ctx):
        plans = {}
        for loop in ctx.forest:
            if not loop.is_inner:
                continue
            profile = ctx.path_profiles.get(loop.key)
            if profile is None or profile.iterations < 4:
                continue
            if profile.loop_back_probability < LOOP_BACK_THRESHOLD:
                continue
            if profile.hot_path_probability < HOT_PATH_THRESHOLD:
                continue
            has_call = any(
                inst.opcode in (Opcode.CALL, Opcode.RET)
                for inst in loop.instructions()
            )
            if has_call:
                continue
            hot_path = profile.hot_path
            hot_uids = {
                inst.uid
                for label in hot_path
                for inst in loop.function.block(label)
            }
            schedule = schedule_cfus(loop, max_cfu_size=MAX_CFU_SIZE,
                                     cross_control=True,
                                     eligible_uids=hot_uids)
            if schedule.compound_count > STATIC_CFU_BUDGET:
                continue
            plans[loop.key] = {
                "loop": loop,
                "profile": profile,
                "hot_path": tuple(hot_path),
                "hot_uids": hot_uids,
                "schedule": schedule,
                "live_ins": min(6, max(2, loop.static_size() // 16)),
            }
        return plans

    def estimate_speedup(self, ctx, plan, core_config):
        profile = plan["profile"]
        hot = profile.hot_path_probability
        width_discount = {1: 1.2, 2: 0.95, 4: 0.7, 6: 0.6, 8: 0.5}.get(
            core_config.width, 1.0)
        if core_config.in_order:
            width_discount *= 1.35
        # Divergent iterations replay on the core (~2x their cost).
        replay_discount = 1.0 / (hot + 2.0 * (1.0 - hot))
        return max(0.5, (0.55 + hot) * width_discount
                   * replay_discount)

    # ------------------------------------------------------------------
    def transform_interval(self, ctx, plan, interval, core_config,
                           seq_alloc):
        loop = plan["loop"]
        schedule = plan["schedule"]
        hot_path = plan["hot_path"]
        trace = ctx.tdg.trace.instructions
        spans = ctx.spans_of(loop, interval)
        loop_uids = {inst.uid for inst in loop.instructions()}

        stream = []
        seq_map = {}
        last_accel_seq = None
        restart_edge = None   # (seq, latency) after a mispeculation

        for span_start, span_end in spans:
            path = _iteration_path(trace, span_start, span_end, loop)
            on_trace = tuple(path) == hot_path
            if on_trace:
                folder = CFUFolder(schedule, self.name, seq_alloc,
                                   seq_map)
                first_in_iter = True
                for index in range(span_start, span_end):
                    dyn = trace[index]
                    uid = dyn.uid
                    opcode = dyn.opcode
                    if uid is None or uid not in loop_uids:
                        stream.append(_remap(dyn, seq_map))
                        continue
                    mapped = _map_deps(dyn, seq_map)
                    entry_edge = ()
                    if first_in_iter and restart_edge is not None:
                        entry_edge = (restart_edge,)
                        restart_edge = None
                    first_in_iter = False
                    if opcode is Opcode.JMP:
                        continue
                    if opcode is Opcode.BR:
                        # Speculative: branch is a cheap verify op with
                        # no control dependence.
                        seq = seq_alloc.next()
                        stream.append(dyn.clone(
                            seq=seq, opcode=Opcode.SWITCH,
                            accel=self.name, src_deps=mapped,
                            extra_deps=entry_edge, mispredicted=False,
                            icache_lat=0, lat_override=1))
                        seq_map[dyn.seq] = seq
                        last_accel_seq = seq
                    elif dyn.mem_addr is not None:
                        seq = seq_alloc.next()
                        stream.append(dyn.clone(
                            seq=seq, accel=self.name, src_deps=mapped,
                            extra_deps=entry_edge, icache_lat=0,
                            mem_dep=seq_map.get(dyn.mem_dep,
                                                dyn.mem_dep)))
                        seq_map[dyn.seq] = seq
                        last_accel_seq = seq
                    elif is_compute(opcode) or opcode in (Opcode.MOV,
                                                          Opcode.LI):
                        inst = folder.process(dyn, mapped)
                        if inst is not None:
                            inst.extra_deps = inst.extra_deps \
                                + entry_edge
                            stream.append(inst)
                            last_accel_seq = inst.seq
                    else:
                        stream.append(_remap(dyn, seq_map))
            else:
                # Trace mispeculation: replay the iteration on the
                # general core behind the flush penalty.
                first = True
                last_core_seq = None
                for index in range(span_start, span_end):
                    dyn = trace[index]
                    inst = _remap(dyn, seq_map)
                    if first and last_accel_seq is not None:
                        inst = inst.clone(extra_deps=inst.extra_deps + (
                            (last_accel_seq, self.mispec_penalty),))
                    first = False
                    stream.append(inst)
                    last_core_seq = inst.seq
                if last_core_seq is not None:
                    restart_edge = (last_core_seq, 2)
        latency = DATAFLOW_EDGE_LATENCY + (1 if self.detailed else 0)
        return apply_dataflow_latency(stream, latency)


def _iteration_path(trace, start, end, loop):
    """Block-label path of one iteration (loop's own blocks)."""
    path = []
    function_name = loop.function.name
    for index in range(start, end):
        static = trace[index].static
        if static is None:
            continue
        block = static.block
        if block.function.name != function_name \
                or block.label not in loop.blocks:
            continue
        if static.index == 0 or not path:
            if not path or path[-1] != block.label:
                path.append(block.label)
    return path


def _map_deps(dyn, seq_map):
    return tuple(seq_map.get(d, d) for d in dyn.src_deps)


def _remap(dyn, seq_map):
    if any(d in seq_map for d in dyn.src_deps) or dyn.mem_dep in seq_map:
        return dyn.clone(
            src_deps=tuple(seq_map.get(d, d) for d in dyn.src_deps),
            mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep))
    return dyn
