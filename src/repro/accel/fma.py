"""The paper's explanatory example: transparent fused multiply-add.

Section 2.3 walks through the whole TDG flow on this transform:

- *analyzer*: inside each basic block, find an ``fadd`` depending on an
  ``fmul`` whose result has a single use; record the pair in the plan;
- *transformer*: over the dynamic trace, retype the ``fmul`` as ``fma``
  (latency of the fused unit) and elide the ``fadd``, reattaching its
  other incoming data dependences to the ``fma``.

This module reproduces paper Figure 4 end-to-end and doubles as the
reference for how transforms are written.
"""

from repro.isa.opcodes import Opcode, fu_latency


def find_fma_pairs(program):
    """Analyzer: map fadd uid -> fmul uid for fusable pairs.

    Mirrors the pseudo-code of Figure 4(c): iterate instructions of
    each basic block looking for an ``fadd`` with a dependent ``fmul``
    that has a single use.
    """
    pairs = {}
    for function in program.functions.values():
        for block in function.blocks:
            last_writer = {}
            use_count = {}
            for inst in block:
                for reg in inst.srcs:
                    producer = last_writer.get(reg)
                    if producer is not None:
                        use_count[producer.uid] = \
                            use_count.get(producer.uid, 0) + 1
                if inst.dest is not None:
                    last_writer[inst.dest] = inst
            # Second pass: match fadd <- fmul single-use pairs.
            last_writer = {}
            for inst in block:
                if inst.opcode is Opcode.FADD:
                    for reg in inst.srcs:
                        producer = last_writer.get(reg)
                        if producer is not None \
                                and producer.opcode is Opcode.FMUL \
                                and use_count.get(producer.uid) == 1 \
                                and producer.uid not in pairs.values():
                            pairs[inst.uid] = producer.uid
                            break
                if inst.dest is not None:
                    last_writer[inst.dest] = inst
    return pairs


class FmaTransform:
    """Transformer: apply the fma plan to a dynamic trace."""

    def __init__(self, program):
        self.pairs = find_fma_pairs(program)       # fadd uid -> fmul uid
        self._fmul_uids = set(self.pairs.values())
        self._fadd_uids = set(self.pairs)

    def apply(self, stream):
        """Return the transformed stream (paper Fig. 4(d))."""
        out = []
        # fmul seq -> transformed inst, for attaching fadd deps.
        pending_fma = {}
        elided = {}    # elided fadd seq -> fma seq (dep redirection)
        for dyn in stream:
            uid = dyn.uid
            if uid in self._fmul_uids:
                fma = dyn.clone(opcode=Opcode.FMA,
                                lat_override=fu_latency(Opcode.FMA))
                pending_fma[dyn.seq] = fma
                out.append(fma)
                continue
            if uid in self._fadd_uids:
                # Find the fma this fadd fuses with (its fmul operand).
                fma = None
                for dep in dyn.src_deps:
                    if dep in pending_fma:
                        fma = pending_fma.pop(dep)
                        break
                if fma is not None:
                    # Attach the fadd's other input deps to the fma.
                    extra = tuple(d for d in dyn.src_deps
                                  if d != fma.seq)
                    fma.src_deps = tuple(set(fma.src_deps) | set(extra))
                    elided[dyn.seq] = fma.seq
                    continue
            # Normal path; redirect deps on elided fadds to their fma.
            if any(dep in elided for dep in dyn.src_deps):
                dyn = dyn.clone(src_deps=tuple(
                    elided.get(dep, dep) for dep in dyn.src_deps))
            out.append(dyn)
        return out

    @property
    def pair_count(self):
        return len(self.pairs)
