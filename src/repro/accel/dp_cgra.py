"""Data-Parallel CGRA model (DySER/Morphosys-like, paper section 3.2).

Analyzer: inner loops whose access/execute slice is profitable (more
offloaded computation than communication instructions).  Vectorizable
loops also apply the SIMD grouping first, and the computation is
"cloned" across lanes until resources fill (modeled as vector-width on
the CGRA ops).

Transformer: the computation subgraph moves onto the CGRA (``accel=
"dp_cgra"`` instructions with routing delay on their dataflow edges);
the core retains memory access, loop control and the communication
instructions (``send``/``recv``).  Offloaded computation instances are
pipelined: one edge for the pipeline depth between instances and one
for in-order completion.  A small configuration cache inserts a
``cfg`` instruction on misses.
"""

from repro.isa.opcodes import Opcode
from repro.accel.base import BSAModel
from repro.analysis.slicing import ROLE_EXECUTE, ROLE_CONTROL
from repro.tdg.engine import AccelResources

#: CGRA functional units (paper: "Its design point has 64 FUs").
CGRA_FUS = 64

#: Routing/scheduling latency added on CGRA dataflow edges (the paper
#: estimates FU-to-FU latency absent a spatial scheduler, sec. 2.7).
ROUTE_DELAY = 1

#: Pipeline depth between computation instances.
PIPELINE_DEPTH = 1

#: Configuration-cache entries (loops).
CONFIG_CACHE_ENTRIES = 4

#: Cycles to load a configuration on a config-cache miss.
CONFIG_LATENCY = 32


class DPCGRAModel(BSAModel):
    """Data-parallel CGRA in access-execute style."""

    name = "dp_cgra"
    power_gates_core = False

    @property
    def route_delay(self):
        """Fast mode estimates FU-to-FU latency (paper sec. 2.7 notes
        the missing spatial scheduler); the detailed reference charges
        the full switch traversal."""
        return 2 if self.detailed else ROUTE_DELAY

    @property
    def config_latency(self):
        return 2 * CONFIG_LATENCY if self.detailed else CONFIG_LATENCY

    def accel_resources(self, core_config):
        return AccelResources({self.name: CGRA_FUS})

    def find_candidates(self, ctx):
        plans = {}
        for loop in ctx.forest:
            if not loop.is_inner:
                continue
            profile = ctx.path_profiles.get(loop.key)
            if profile is None or profile.iterations < 8:
                continue
            if profile.average_trip_count < 4:
                continue
            slice_info = ctx.slice_info(loop)
            if not slice_info.profitable:
                continue
            if slice_info.offloaded_count > CGRA_FUS:
                continue
            dep = ctx.dep_info(loop)
            plans[loop.key] = {
                "loop": loop,
                "slice": slice_info,
                "dep": dep,
                "profile": profile,
                "config_cache": [],   # shared LRU across invocations
            }
        return plans

    def estimate_speedup(self, ctx, plan, core_config):
        slice_info = plan["slice"]
        dep = plan["dep"]
        total = max(1, len(slice_info.roles))
        offload_fraction = slice_info.offloaded_count / total
        estimate = 1.0 + offload_fraction
        if dep.vectorizable:
            estimate *= 1.0 + 0.4 * (core_config.vector_len - 1) \
                * dep.contiguous_fraction()
        # Predicated execution wastes fabric on control-dense loops.
        branch_fraction = plan["profile"].branch_fraction
        estimate /= 1.0 + 3.0 * branch_fraction
        return max(0.8, estimate)

    # ------------------------------------------------------------------
    def transform_interval(self, ctx, plan, interval, core_config,
                           seq_alloc):
        loop = plan["loop"]
        dep = plan["dep"]
        slice_info = plan["slice"]
        trace = ctx.tdg.trace.instructions
        spans = ctx.spans_of(loop, interval)
        vectorizable = dep.vectorizable
        group_len = core_config.vector_len if vectorizable else 1
        # Cloning: replicate the compute region across lanes while it
        # fits the fabric.
        offloaded = max(1, slice_info.offloaded_count)
        clone_limit = max(1, CGRA_FUS // offloaded)
        lanes = min(group_len, clone_limit) if vectorizable else 1

        stream = []
        seq_map = {}
        self._maybe_configure(plan, loop, stream, seq_alloc, trace,
                              interval)

        prev_first_cgra = None
        prev_last_cgra = None
        index = 0
        while index < len(spans):
            group = spans[index:index + group_len]
            if vectorizable and len(group) < group_len:
                for span_start, span_end in group:
                    for i in range(span_start, span_end):
                        stream.append(
                            _remap(trace[i], seq_map))
                break
            first_cgra, last_cgra = self._emit_group(
                trace, group, loop, slice_info, dep, lanes, stream,
                seq_map, seq_alloc, prev_first_cgra, prev_last_cgra)
            if first_cgra is not None:
                prev_first_cgra = first_cgra
                prev_last_cgra = last_cgra
            index += group_len
        return stream

    def _maybe_configure(self, plan, loop, stream, seq_alloc, trace,
                         interval):
        cache = plan["config_cache"]
        if loop.key in cache:
            cache.remove(loop.key)
            cache.append(loop.key)
            return
        cache.append(loop.key)
        if len(cache) > CONFIG_CACHE_ENTRIES:
            cache.pop(0)
        template = trace[interval[0]]
        stream.append(template.clone(
            seq=seq_alloc.next(), opcode=Opcode.CFG, src_deps=(),
            mem_dep=None, mem_addr=None, mem_lat=0, mem_level=None,
            taken=None, mispredicted=False, icache_lat=0,
            lat_override=self.config_latency, vector_width=1))

    def _emit_group(self, trace, group, loop, slice_info, dep, lanes,
                    stream, seq_map, seq_alloc, prev_first, prev_last):
        """Emit one (possibly vector) group of iterations.

        Memory/control stay on the core (vectorized when profitable);
        compute goes to the CGRA with routing-delayed dataflow edges.
        """
        loop_uids = {inst.uid for inst in loop.instructions()}
        instances = {}
        order = []
        for span_start, span_end in group:
            for i in range(span_start, span_end):
                dyn = trace[i]
                uid = dyn.uid
                if uid is None or uid not in loop_uids:
                    stream.append(_remap(dyn, seq_map))
                    continue
                instances.setdefault(uid, []).append(dyn)
                if len(instances[uid]) == 1:
                    order.append(uid)
        order.sort(key=lambda u: (instances[u][0].static.block.index,
                                  instances[u][0].static.index))

        vector_mode = lanes > 1
        first_cgra = None
        last_cgra = None
        cgra_seqs = set()

        for uid in order:
            group_insts = instances[uid]
            rep = group_insts[0]
            role = slice_info.role_of(uid)
            new_seq = seq_alloc.next()

            if role == ROLE_EXECUTE:
                # CGRA op (cloned across lanes when vectorized).
                deps = []
                extra = []
                needs_send = False
                for d in rep.src_deps:
                    mapped = seq_map.get(d, d)
                    if mapped in cgra_seqs:
                        extra.append((mapped, self.route_delay))
                    else:
                        needs_send = True
                        deps.append(mapped)
                if needs_send:
                    # Core -> CGRA operand transfer.
                    send_seq = seq_alloc.next()
                    stream.append(rep.clone(
                        seq=send_seq, opcode=Opcode.SEND, accel=None,
                        src_deps=tuple(deps), mem_dep=None,
                        mem_addr=None, mem_lat=0, mem_level=None,
                        taken=None, mispredicted=False, icache_lat=0,
                        lat_override=1, vector_width=1))
                    deps = [send_seq]
                if prev_first is not None and first_cgra is None:
                    extra.append((prev_first, PIPELINE_DEPTH))
                inst = rep.clone(
                    seq=new_seq, accel=self.name,
                    src_deps=tuple(deps), extra_deps=tuple(extra),
                    taken=None, mispredicted=False, icache_lat=0,
                    vector_width=lanes if vector_mode else 1)
                stream.append(inst)
                cgra_seqs.add(new_seq)
                if first_cgra is None:
                    first_cgra = new_seq
                last_cgra = new_seq
            elif rep.mem_addr is not None:
                self._emit_memory(uid, group_insts, dep, lanes,
                                  vector_mode, stream, seq_map,
                                  seq_alloc, new_seq, cgra_seqs)
                continue
            elif role == ROLE_CONTROL or uid in dep.induction_uids \
                    or rep.opcode is Opcode.BR:
                last = group_insts[-1]
                stream.append(last.clone(
                    seq=new_seq,
                    src_deps=_map_deps(last, seq_map, new_seq)))
            else:
                # Core-side scalar (address computation etc.): once per
                # group when vectorized (index math is shared).
                stream.append(rep.clone(
                    seq=new_seq,
                    src_deps=_map_deps(rep, seq_map, new_seq),
                    vector_width=1))
            for dyn in group_insts:
                seq_map[dyn.seq] = new_seq

        # CGRA -> core transfer for values read outside (recv); one per
        # group for the out-communication set.
        for uid in slice_info.comm_out_uids:
            reps = instances.get(uid)
            if not reps:
                continue
            mapped = seq_map.get(reps[0].seq)
            if mapped is None:
                continue
            recv_seq = seq_alloc.next()
            stream.append(reps[0].clone(
                seq=recv_seq, opcode=Opcode.RECV, accel=None,
                src_deps=(mapped,), mem_dep=None, mem_addr=None,
                mem_lat=0, mem_level=None, taken=None,
                mispredicted=False, icache_lat=0, lat_override=1,
                vector_width=1))
            for dyn in instances[uid]:
                seq_map[dyn.seq] = recv_seq
        if prev_last is not None and last_cgra is not None:
            # In-order completion between computation instances.
            for inst in reversed(stream):
                if inst.seq == last_cgra:
                    inst.extra_deps = inst.extra_deps \
                        + ((prev_last, 0),)
                    break
        return first_cgra, last_cgra

    @staticmethod
    def _emit_memory(uid, group_insts, dep, lanes, vector_mode, stream,
                     seq_map, seq_alloc, new_seq, cgra_seqs):
        rep = group_insts[0]
        stride = dep.stride_of(uid)
        if vector_mode and stride == 1:
            worst = max(group_insts, key=lambda d: d.mem_lat)
            vop = Opcode.VLD if rep.static.is_load else Opcode.VST
            stream.append(rep.clone(
                seq=new_seq, opcode=vop, vector_width=len(group_insts),
                mem_lat=worst.mem_lat, mem_level=worst.mem_level,
                src_deps=_map_deps(rep, seq_map, new_seq),
                mem_dep=seq_map.get(rep.mem_dep, rep.mem_dep)))
            for dyn in group_insts:
                seq_map[dyn.seq] = new_seq
            return
        last_seq = new_seq
        for lane, dyn in enumerate(group_insts):
            lane_seq = new_seq if lane == 0 else seq_alloc.next()
            stream.append(dyn.clone(
                seq=lane_seq,
                src_deps=_map_deps(dyn, seq_map, lane_seq),
                mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep)))
            seq_map[dyn.seq] = lane_seq
            last_seq = lane_seq
        del last_seq


def _map_deps(dyn, seq_map, own_seq):
    deps = []
    for d in dyn.src_deps:
        mapped = seq_map.get(d, d)
        if mapped != own_seq:
            deps.append(mapped)
    return tuple(deps)


def _remap(dyn, seq_map):
    if any(d in seq_map for d in dyn.src_deps) or dyn.mem_dep in seq_map:
        return dyn.clone(
            src_deps=tuple(seq_map.get(d, d) for d in dyn.src_deps),
            mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep))
    return dyn
