"""Voltage-frequency scaling on top of the energy model.

Paper section 5.5 lists "modifying their frequencies" as unexplored
design space.  This module provides first-order DVFS physics so cores
and accelerators can be evaluated at non-nominal operating points:

- dynamic energy scales with V^2 (and V scales roughly linearly with
  frequency inside the operating window);
- leakage power scales with V;
- execution *time* scales inversely with frequency, so leakage energy
  per task grows as frequency drops.

Everything is relative to the nominal point (2 GHz / 0.8 V at 22nm).
"""

NOMINAL_GHZ = 2.0
NOMINAL_VDD = 0.8

#: Operating window: the model clamps requests outside it.
MIN_GHZ = 0.5
MAX_GHZ = 3.2

#: dV/df slope within the window (V per GHz), first-order.
VOLT_PER_GHZ = 0.15


class OperatingPoint:
    """One (frequency, voltage) pair with derived scale factors."""

    def __init__(self, freq_ghz, vdd=None):
        self.freq_ghz = min(MAX_GHZ, max(MIN_GHZ, freq_ghz))
        if vdd is None:
            vdd = NOMINAL_VDD + VOLT_PER_GHZ * (self.freq_ghz
                                                - NOMINAL_GHZ)
        self.vdd = max(0.5, vdd)

    @property
    def dynamic_energy_scale(self):
        """Per-event energy vs nominal: E ~ C V^2."""
        return (self.vdd / NOMINAL_VDD) ** 2

    @property
    def leakage_power_scale(self):
        """Leakage power vs nominal: P_leak ~ V."""
        return self.vdd / NOMINAL_VDD

    @property
    def leakage_energy_per_cycle_scale(self):
        """Leakage energy charged per *cycle*: power / frequency."""
        return self.leakage_power_scale \
            * (NOMINAL_GHZ / self.freq_ghz)

    @property
    def time_scale(self):
        """Wall-clock per cycle vs nominal."""
        return NOMINAL_GHZ / self.freq_ghz

    def __repr__(self):
        return (f"<OperatingPoint {self.freq_ghz:.2f}GHz "
                f"@{self.vdd:.2f}V>")


def scale_run(cycles, breakdown, point):
    """Re-cost one engine+energy evaluation at *point*.

    Parameters
    ----------
    cycles:
        Cycle count from the timing engine (frequency-independent in
        this first-order model: memory latencies are in core cycles).
    breakdown:
        An :class:`~repro.energy.mcpat.EnergyBreakdown` computed at the
        nominal point.
    point:
        The target :class:`OperatingPoint`.

    Returns (wall_time_ns, energy_pj, avg_power_w).
    """
    dynamic = sum(pj for component, pj in breakdown.components.items()
                  if not component.startswith("leak"))
    leakage = sum(pj for component, pj in breakdown.components.items()
                  if component.startswith("leak"))
    energy = (dynamic * point.dynamic_energy_scale
              + leakage * point.leakage_energy_per_cycle_scale)
    wall_ns = cycles / point.freq_ghz
    power_w = energy * 1e-12 / (wall_ns * 1e-9) if wall_ns else 0.0
    return wall_ns, energy, power_w


def energy_optimal_frequency(cycles, breakdown,
                             candidates=(0.5, 0.8, 1.0, 1.25, 1.6,
                                         2.0, 2.5, 3.2)):
    """Frequency minimizing total energy for this run.

    Low frequency cuts dynamic V^2 energy but stretches leakage time;
    the optimum sits in between — the classic DVFS result.
    """
    best = None
    for freq in candidates:
        point = OperatingPoint(freq)
        _wall, energy, _power = scale_run(cycles, breakdown, point)
        if best is None or energy < best[1]:
            best = (point, energy)
    return best[0]


def race_to_idle_comparison(cycles, breakdown, low_ghz=1.0):
    """Compare 'race-to-idle' (nominal f, then sleep) against running
    slow; returns dict of both (time, energy) pairs."""
    fast = scale_run(cycles, breakdown, OperatingPoint(NOMINAL_GHZ))
    slow = scale_run(cycles, breakdown, OperatingPoint(low_ghz))
    return {
        "race_to_idle": {"wall_ns": fast[0], "energy_pj": fast[1]},
        "run_slow": {"wall_ns": slow[0], "energy_pj": slow[1]},
    }
