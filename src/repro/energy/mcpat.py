"""Event-driven core + accelerator energy model (the McPAT stand-in).

The TDG accumulates per-instruction energy events; this module prices
them with coefficients scaled by the core configuration (wider
machines pay superlinearly for rename/select/bypass, as McPAT does)
and adds structure leakage integrated over cycles.

All dynamic coefficients are in pJ at a nominal 22nm / 2GHz point.
Absolute joules are not the point (the paper reports relative energy);
the scaling *between* configurations is what matters.
"""

from repro.isa.opcodes import Opcode, OpClass, is_vector
from repro.energy.cacti import (
    L1D_SRAM, L1I_SRAM, L2_SRAM, DRAM_ACCESS_PJ,
)

#: Functional-unit op energy by class (pJ per scalar op).
_FU_PJ = {
    OpClass.ALU: 4.0,
    OpClass.MUL: 12.0,
    OpClass.FP: 18.0,
    OpClass.FP_DIV: 45.0,
    OpClass.BRANCH: 3.0,
    OpClass.CONTROL: 1.5,
    OpClass.MEM_LD: 0.0,   # priced via the cache model
    OpClass.MEM_ST: 0.0,
    OpClass.ACCEL: 4.0,
}

#: Vector lanes share control overhead: per-lane discount.
_VECTOR_LANE_FACTOR = 0.65

#: Accelerator-side coefficients (pJ), from the publications the paper
#: cites (DySER / SEED / BERET energy tables), rounded.
_ACCEL_OP_PJ = {
    "dp_cgra": 3.5,    # CGRA FU op
    "ns_df": 5.0,      # dataflow fire + operand storage
    "trace_p": 4.5,    # trace CFU slot
}
_ACCEL_NETWORK_PJ = {
    "dp_cgra": 2.0,    # switch traversal
    "ns_df": 2.0,      # writeback bus
    "trace_p": 1.5,
}
_CFU_EXTRA_OP_PJ = 3.0      # per additional fused op inside a CFU
_CONFIG_PJ = 250.0          # loading one accelerator configuration
_SEND_RECV_PJ = 6.0         # core <-> accelerator operand transfer
_STORE_BUFFER_PJ = 8.0      # Trace-P iteration-versioned store buffer

#: Accelerator leakage while powered on (pJ/cycle).
ACCEL_LEAK_PJ = {
    "simd": 6.0,
    "dp_cgra": 20.0,
    "ns_df": 12.0,
    "trace_p": 10.0,
}

#: Fraction of core leakage that remains when an offload BSA power-
#: gates the core (caches + wakeup logic stay on) — paper section 5.3.
POWER_GATED_CORE_LEAK_FRACTION = 0.3


class EnergyBreakdown:
    """Per-component energy (pJ) with a convenience total."""

    def __init__(self):
        self.components = {}

    def add(self, component, picojoules):
        if picojoules:
            self.components[component] = (
                self.components.get(component, 0.0) + picojoules
            )

    def merge(self, other):
        for component, picojoules in other.components.items():
            self.add(component, picojoules)
        return self

    @property
    def total_pj(self):
        return sum(self.components.values())

    @property
    def total_nj(self):
        return self.total_pj / 1000.0

    def fraction(self, component):
        total = self.total_pj
        return self.components.get(component, 0.0) / total if total else 0.0

    def __repr__(self):
        return f"<EnergyBreakdown {self.total_nj:.1f} nJ>"


class EnergyModel:
    """Prices TDG event streams for one core configuration."""

    def __init__(self, config):
        self.config = config
        width = config.width
        # Superlinear frontend/backend scaling, McPAT-style.
        width_factor = (width / 2.0) ** 0.7
        self.fetch_pj = L1I_SRAM.access_energy_pj / 2.0 + 3.0
        self.decode_pj = 3.0 * width_factor
        self.bpred_pj = 2.0
        self.commit_pj = 1.5 * width_factor
        self.regread_pj = 2.5 * (1.0 + 0.15 * (width - 2))
        self.regwrite_pj = 3.5 * (1.0 + 0.15 * (width - 2))
        self.bypass_pj = 2.5 * width_factor
        if config.in_order:
            self.rename_pj = 0.0
            self.iq_pj = 1.0      # simple scoreboard
            self.rob_pj = 0.0
            self.lsq_pj = 2.0
        else:
            self.rename_pj = 5.0 * width_factor
            self.iq_pj = 7.0 * (config.iq_size / 32.0) ** 0.5
            self.rob_pj = 5.0 * (config.rob_size / 64.0) ** 0.3
            self.lsq_pj = 7.0
        self.l1d_pj = L1D_SRAM.access_energy_pj
        self.l2_pj = L2_SRAM.access_energy_pj
        self.dram_pj = DRAM_ACCESS_PJ
        self.core_leak_pj_per_cycle = self._core_leakage()

    def _core_leakage(self):
        config = self.config
        leak = 4.0 + 3.0 * config.width
        leak += 4.0 * config.fp_units + 1.5 * config.alu_units
        if not config.in_order:
            leak += 8.0 * (config.rob_size / 64.0)
            leak += 3.0 * (config.iq_size / 32.0)
        leak += L1I_SRAM.leakage_pj_per_cycle
        leak += L1D_SRAM.leakage_pj_per_cycle
        leak += L2_SRAM.leakage_pj_per_cycle
        return leak

    # ------------------------------------------------------------------
    def evaluate(self, stream, cycles, core_active=True,
                 active_accels=()):
        """Energy of executing *stream* over *cycles* cycles.

        ``core_active=False`` models offload regions where the BSA
        power-gates the core pipeline (NS-DF, Trace-P).
        *active_accels* names BSAs powered on during these cycles.
        """
        breakdown = EnergyBreakdown()
        per_inst = self._price_instructions(stream, breakdown)
        del per_inst  # priced in place
        # Leakage.
        core_leak = self.core_leak_pj_per_cycle
        if not core_active:
            core_leak *= POWER_GATED_CORE_LEAK_FRACTION
        breakdown.add("leak_core", core_leak * cycles)
        for accel in active_accels:
            breakdown.add(f"leak_{accel}",
                          ACCEL_LEAK_PJ.get(accel, 8.0) * cycles)
        return breakdown

    def _price_instructions(self, stream, breakdown):
        in_order = self.config.in_order
        for inst in stream:
            opcode = inst.opcode
            if inst.accel is not None:
                self._price_accel_inst(inst, breakdown)
                continue
            # ---- core pipeline events -----------------------------
            breakdown.add("fetch", self.fetch_pj)
            breakdown.add("decode", self.decode_pj)
            if not in_order:
                breakdown.add("rename", self.rename_pj)
                breakdown.add("iq", self.iq_pj)
                breakdown.add("rob", self.rob_pj)
            breakdown.add("regfile",
                          self.regread_pj * len(inst.src_deps)
                          + (self.regwrite_pj
                             if inst.static is not None
                             and inst.static.dest is not None else 0.0))
            breakdown.add("bypass", self.bypass_pj)
            breakdown.add("commit", self.commit_pj)
            op_cls = inst.op_class
            fu_pj = _FU_PJ[op_cls]
            lanes = inst.vector_width
            if lanes > 1 or is_vector(opcode):
                lanes = max(lanes, 1)
                fu_pj = fu_pj * lanes * _VECTOR_LANE_FACTOR
                breakdown.add("simd_fu", fu_pj)
            else:
                breakdown.add("fu", fu_pj)
            if opcode is Opcode.BR:
                breakdown.add("bpred", self.bpred_pj)
            if opcode in (Opcode.SEND, Opcode.RECV):
                breakdown.add("accel_comm", _SEND_RECV_PJ)
            if opcode is Opcode.CFG:
                breakdown.add("accel_config", _CONFIG_PJ)
            if inst.mem_addr is not None:
                breakdown.add("lsq", self.lsq_pj)
                lanes = max(inst.vector_width, 1)
                breakdown.add("l1d", self.l1d_pj * (1 + 0.3 * (lanes - 1)))
                if inst.mem_level in ("l2", "dram"):
                    breakdown.add("l2", self.l2_pj)
                if inst.mem_level == "dram":
                    breakdown.add("dram", self.dram_pj)

    @staticmethod
    def _price_accel_inst(inst, breakdown):
        accel = inst.accel
        opcode = inst.opcode
        op_pj = _ACCEL_OP_PJ.get(accel, 4.0)
        net_pj = _ACCEL_NETWORK_PJ.get(accel, 2.0)
        if opcode is Opcode.CFU:
            fused = max(inst.vector_width, 1)
            breakdown.add(f"{accel}_cfu",
                          op_pj + _CFU_EXTRA_OP_PJ * (fused - 1))
        elif opcode is Opcode.CFG:
            breakdown.add("accel_config", _CONFIG_PJ)
        else:
            breakdown.add(f"{accel}_op", op_pj)
        breakdown.add(f"{accel}_net", net_pj)
        if inst.mem_addr is not None:
            breakdown.add("l1d", L1D_SRAM.access_energy_pj)
            if inst.mem_level in ("l2", "dram"):
                breakdown.add("l2", L2_SRAM.access_energy_pj)
            if inst.mem_level == "dram":
                breakdown.add("dram", DRAM_ACCESS_PJ)
            if accel == "trace_p" and inst.opcode is Opcode.ST:
                breakdown.add("store_buffer", _STORE_BUFFER_PJ)
