"""Area estimates (mm^2 at 22nm) for cores and BSAs.

The paper uses McPAT for general-core area and numbers from the
DySER/SEED/BERET publications for accelerators (section 4).  Our core
areas follow a McPAT-like decomposition (frontend, window, execute,
LSU, private L1s); accelerator areas are in line with the cited
publications' relative sizes.  The headline Figure 12 claim — an
OOO2-based three-BSA ExoCore at ~40% less area than OOO6 — falls out
of these tables.
"""

from repro.energy.cacti import L1D_SRAM, L1I_SRAM


def core_area(config):
    """Area of a general-purpose core, including private L1 caches."""
    width = config.width
    frontend_per_way = 0.15 if config.in_order else 0.30
    area = 0.20 + frontend_per_way * width        # fetch/decode
    area += 0.15 * config.alu_units
    area += 0.25 * config.mul_units
    area += 0.50 * config.fp_units
    area += 0.25 * config.dcache_ports            # AGU + port wiring
    if not config.in_order:
        area += 0.020 * config.rob_size           # ROB + PRF
        area += 0.028 * config.iq_size            # issue queue + wakeup
        area += 0.40 * width                      # rename + bypass
    area += L1I_SRAM.area_mm2 + L1D_SRAM.area_mm2
    return area


#: BSA areas (mm^2), scaled from the cited publications: DySER-style
#: 64-FU CGRA, SEED-style dataflow units, BERET-style trace engine,
#: and a 256-bit SIMD datapath extension.
ACCEL_AREA = {
    "simd": 0.60,
    "dp_cgra": 1.60,
    "ns_df": 1.10,
    "trace_p": 0.80,
}


def accelerator_area(name):
    try:
        return ACCEL_AREA[name]
    except KeyError:
        raise KeyError(f"unknown accelerator {name!r}") from None


def exocore_area(config, accels=()):
    """Total area of a core plus its attached BSAs."""
    return core_area(config) + sum(accelerator_area(a) for a in accels)
