"""Analytical SRAM energy/area model (the CACTI stand-in).

CACTI derives access energy and area from capacity, associativity and
port count.  We use well-known first-order scaling laws at a nominal
22nm point: access energy grows roughly with the square root of
capacity (bitline/wordline length), area linearly with capacity plus a
per-way and per-port overhead.  The constants are calibrated so the
derived numbers land in the range of published 22nm figures (L1 access
a few pJ-tens of pJ, 2MB L2 ~100 pJ).
"""

import math

#: pJ per access for a 1KiB, 1-port, direct-mapped array.
_BASE_ACCESS_PJ = 2.4

#: mm^2 per KiB of SRAM at 22nm (array efficiency folded in).
_MM2_PER_KIB = 0.003

#: Leakage, pJ per cycle per KiB.
_LEAK_PJ_PER_CYCLE_PER_KIB = 0.004


class SRAMModel:
    """Energy/area estimates for one SRAM structure.

    Parameters
    ----------
    size_kib:
        Capacity in KiB.
    ways:
        Associativity (tag comparators add energy/area).
    ports:
        Read/write port count (wire load grows with ports).
    """

    def __init__(self, size_kib, ways=1, ports=1, name="sram"):
        if size_kib <= 0:
            raise ValueError("size_kib must be positive")
        if ways < 1 or ports < 1:
            raise ValueError("ways and ports must be >= 1")
        self.size_kib = size_kib
        self.ways = ways
        self.ports = ports
        self.name = name

    @property
    def access_energy_pj(self):
        """Dynamic energy of one access."""
        capacity_term = math.sqrt(self.size_kib)
        way_term = 1.0 + 0.12 * (self.ways - 1)
        port_term = 1.0 + 0.35 * (self.ports - 1)
        return _BASE_ACCESS_PJ * capacity_term * way_term * port_term

    @property
    def area_mm2(self):
        way_term = 1.0 + 0.05 * (self.ways - 1)
        port_term = 1.0 + 0.45 * (self.ports - 1)
        return _MM2_PER_KIB * self.size_kib * way_term * port_term

    @property
    def leakage_pj_per_cycle(self):
        return _LEAK_PJ_PER_CYCLE_PER_KIB * self.size_kib

    def __repr__(self):
        return (f"<SRAM {self.name}: {self.size_kib}KiB "
                f"{self.ways}-way {self.ports}p, "
                f"{self.access_energy_pj:.1f}pJ/access, "
                f"{self.area_mm2:.3f}mm2>")


#: The shared hierarchy of paper section 4 (32KiB L1I, 64KiB L1D, 2MB L2).
L1I_SRAM = SRAMModel(32, ways=2, ports=1, name="l1i")
L1D_SRAM = SRAMModel(64, ways=4, ports=2, name="l1d")
L2_SRAM = SRAMModel(2048, ways=8, ports=1, name="l2")

#: DRAM access energy (pJ) — an order of magnitude above L2.
DRAM_ACCESS_PJ = 2000.0
