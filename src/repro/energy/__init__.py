"""Energy, power and area estimation (the McPAT + CACTI stand-in).

Prism fed TDG event counts to McPAT for the general core and used
McPAT/CACTI plus published numbers for accelerators (paper section
2.4).  We reproduce that structure: :mod:`repro.energy.cacti` is a
small analytical SRAM model; :mod:`repro.energy.mcpat` turns per-
instruction event counts into energy with config-scaled coefficients;
:mod:`repro.energy.area` tables the areas used in Figure 12.
"""

from repro.energy.cacti import SRAMModel
from repro.energy.mcpat import EnergyModel, EnergyBreakdown
from repro.energy.area import core_area, accelerator_area, exocore_area
from repro.energy.dvfs import OperatingPoint, scale_run

__all__ = [
    "SRAMModel",
    "EnergyModel",
    "EnergyBreakdown",
    "core_area",
    "accelerator_area",
    "exocore_area",
    "OperatingPoint",
    "scale_run",
]
