"""BSA selection: Oracle and Amdahl-tree schedulers (paper 3.3 / 4).

The Oracle scheduler "chooses the best accelerator for each static
region, based on past execution characteristics", using energy-delay
with the rule that no region may lose more than 10% performance.

The Amdahl-tree scheduler (paper Fig. 9) works from *approximate*
static/profile speedup estimates: a bottom-up traversal applies
Amdahl's law at each loop node and picks the best architecture per
region — then the chosen assignment is costed with the measured
numbers.  As in the paper, it is deliberately calibrated slightly
toward BSA use (energy-biased).
"""

#: Oracle constraint: max tolerated per-region slowdown (paper: 10%).
MAX_SLOWDOWN = 0.10

#: Amdahl-tree bias: a BSA wins if its estimated speedup is within
#: this factor of the best core-side composition (over-calibration
#: toward BSAs, paper section 5.4).
AMDAHL_BSA_BIAS = 1.0


class ScheduleResult:
    """A whole-program schedule and its composed cost."""

    def __init__(self, core_name, bsa_subset):
        self.core_name = core_name
        self.bsa_subset = tuple(bsa_subset)
        self.cycles = 0
        self.energy_pj = 0.0
        self.assignment = {}    # loop key -> bsa name or "gpp"
        self.cycles_by = {}     # "gpp"/bsa -> cycles
        self.energy_by = {}     # "gpp"/bsa -> pJ

    def _add(self, tag, cycles, energy):
        self.cycles_by[tag] = self.cycles_by.get(tag, 0) + cycles
        self.energy_by[tag] = self.energy_by.get(tag, 0.0) + energy

    @property
    def offloaded_fraction(self):
        """Fraction of cycles spent on any BSA (1 - paper's
        "un-accelerated" share, relative to this schedule)."""
        if not self.cycles:
            return 0.0
        gpp = self.cycles_by.get("gpp", 0)
        return max(0.0, 1.0 - gpp / self.cycles)

    def __repr__(self):
        return (f"<ScheduleResult {self.core_name}+"
                f"{'/'.join(self.bsa_subset) or 'none'}: "
                f"{self.cycles} cyc, {self.energy_pj/1000:.0f} nJ>")


def _node_options(evaluation, core_name, bsa_subset, loop):
    """Accelerated options (bsa, estimate) available at a loop node."""
    options = []
    for bsa in bsa_subset:
        estimate = evaluation.estimate_for(bsa, core_name, loop.key)
        if estimate is not None:
            options.append((bsa, estimate))
    return options


def oracle_schedule(evaluation, core_name, bsa_subset,
                    max_slowdown=MAX_SLOWDOWN):
    """Energy-delay-optimal per-region selection (the paper's Oracle)."""
    baseline = evaluation.baseline(core_name)
    result = ScheduleResult(core_name, bsa_subset)

    from repro.obs import span as _span
    obs_span = _span("exocore.schedule.oracle", core=core_name,
                     subset="/".join(bsa_subset) or "none")

    def solve(loop):
        """Returns (cycles, energy, attribution list, assignments)."""
        base_cycles = baseline.per_loop_cycles.get(loop.key, 0)
        base_energy = baseline.per_loop_energy.get(loop.key, 0.0)
        # Option A: keep this level on the core, recurse into children.
        child_cycles = 0
        child_energy = 0.0
        child_attr = []
        child_assign = {}
        for child in loop.children:
            c_cyc, c_en, c_attr, c_asn = solve(child)
            child_cycles += c_cyc
            child_energy += c_en
            child_attr.extend(c_attr)
            child_assign.update(c_asn)
        children_base_cycles = sum(
            baseline.per_loop_cycles.get(c.key, 0)
            for c in loop.children)
        children_base_energy = sum(
            baseline.per_loop_energy.get(c.key, 0.0)
            for c in loop.children)
        own_cycles = max(0, base_cycles - children_base_cycles)
        own_energy = max(0.0, base_energy - children_base_energy)
        core_cycles = own_cycles + child_cycles
        core_energy = own_energy + child_energy
        core_assign = dict(child_assign)
        core_assign[loop.key] = "gpp"
        best = (
            core_cycles, core_energy,
            [("gpp", own_cycles, own_energy)] + child_attr,
            core_assign,
        )
        best_edp = _edp(core_cycles, core_energy)
        # Option B: hand the whole subtree to one BSA.
        limit = base_cycles * (1.0 + max_slowdown)
        for bsa, estimate in _node_options(evaluation, core_name,
                                           bsa_subset, loop):
            if estimate.cycles > limit:
                continue
            edp = _edp(estimate.cycles, estimate.energy_pj)
            if edp < best_edp:
                best_edp = edp
                best = (
                    estimate.cycles, estimate.energy_pj,
                    [(bsa, estimate.cycles, estimate.energy_pj)],
                    {loop.key: bsa},
                )
        return best

    with obs_span:
        _compose_program(evaluation, core_name, result, solve)
    return result


def amdahl_schedule(evaluation, core_name, bsa_subset,
                    bsa_bias=AMDAHL_BSA_BIAS):
    """Amdahl-tree selection from approximate speedup estimates
    (paper Fig. 9), costed afterwards with the measured numbers."""
    from repro.accel import BSA_REGISTRY
    from repro.core_model import core_by_name

    baseline = evaluation.baseline(core_name)
    config = core_by_name(core_name)
    ctx = evaluation.ctx
    result = ScheduleResult(core_name, bsa_subset)

    def estimated_speedup(bsa, loop):
        plan = evaluation.plans.get(bsa, {}).get(loop.key)
        if plan is None:
            return None
        model = BSA_REGISTRY[bsa]()
        return model.estimate_speedup(ctx, plan, config)

    def solve(loop):
        base_cycles = baseline.per_loop_cycles.get(loop.key, 0)
        base_energy = baseline.per_loop_energy.get(loop.key, 0.0)
        # Children composition (Amdahl's law at this node).
        child_results = [solve(child) for child in loop.children]
        children_base = sum(
            baseline.per_loop_cycles.get(c.key, 0)
            for c in loop.children)
        children_base_energy = sum(
            baseline.per_loop_energy.get(c.key, 0.0)
            for c in loop.children)
        own_cycles = max(0, base_cycles - children_base)
        own_energy = max(0.0, base_energy - children_base_energy)
        core_cycles = own_cycles + sum(r[0] for r in child_results)
        core_energy = own_energy + sum(r[1] for r in child_results)
        core_speedup = base_cycles / core_cycles if core_cycles else 1.0
        # Best whole-node BSA by *estimated* speedup.
        best_bsa = None
        best_est = 0.0
        for bsa in bsa_subset:
            est = estimated_speedup(bsa, loop)
            if est is not None and est > best_est:
                best_est = est
                best_bsa = bsa
        take_bsa = (
            best_bsa is not None
            and best_est >= 1.0
            and best_est >= core_speedup * bsa_bias
            and evaluation.estimate_for(best_bsa, core_name,
                                        loop.key) is not None
        )
        if take_bsa:
            estimate = evaluation.estimate_for(best_bsa, core_name,
                                               loop.key)
            return (
                estimate.cycles, estimate.energy_pj,
                [(best_bsa, estimate.cycles, estimate.energy_pj)],
                {loop.key: best_bsa},
            )
        attr = [("gpp", own_cycles, own_energy)]
        assign = {loop.key: "gpp"}
        for child_result in child_results:
            attr.extend(child_result[2])
            assign.update(child_result[3])
        return (core_cycles, core_energy, attr, assign)

    from repro.obs import span as _span
    with _span("exocore.schedule.amdahl", core=core_name,
               subset="/".join(bsa_subset) or "none"):
        _compose_program(evaluation, core_name, result, solve)
    return result


def _edp(cycles, energy):
    return max(cycles, 1) * max(energy, 1.0)


def _compose_program(evaluation, core_name, result, solve):
    """Run *solve* over the forest roots and fill in the totals."""
    baseline = evaluation.baseline(core_name)
    forest = evaluation.forest
    roots = forest.roots
    total_cycles = baseline.cycles
    total_energy = baseline.energy_pj
    roots_base_cycles = sum(
        baseline.per_loop_cycles.get(r.key, 0) for r in roots)
    roots_base_energy = sum(
        baseline.per_loop_energy.get(r.key, 0.0) for r in roots)
    outside_cycles = max(0, total_cycles - roots_base_cycles)
    outside_energy = max(0.0, total_energy - roots_base_energy)
    result.cycles = outside_cycles
    result.energy_pj = outside_energy
    result._add("gpp", outside_cycles, outside_energy)
    for root in roots:
        cycles, energy, attribution, assignment = solve(root)
        result.cycles += cycles
        result.energy_pj += energy
        result.assignment.update(assignment)
        for tag, c, e in attribution:
            result._add(tag, c, e)
    return result
