"""Per-benchmark evaluation: baselines + accelerated region estimates.

This is the expensive step the TDG makes tractable: the trace is
simulated once, then every (core, BSA, region) combination is costed by
transforming and re-timing only the affected trace slices.
"""

from repro.accel import BSA_REGISTRY, AnalysisContext
from repro.analysis.regions import attribute_baseline
from repro.core_model import core_by_name
from repro.obs import counter, span
from repro.tdg.fastpath import (
    LoweringError, lower_stream, make_engine, resolve_engine,
)


class CoreBaseline:
    """Full-trace baseline numbers for one core config."""

    def __init__(self, core_name, cycles, energy_pj, per_loop_cycles,
                 per_loop_energy):
        self.core_name = core_name
        self.cycles = cycles
        self.energy_pj = energy_pj
        self.per_loop_cycles = per_loop_cycles   # loop key -> cycles
        self.per_loop_energy = per_loop_energy   # loop key -> pJ

    def __repr__(self):
        return (f"<CoreBaseline {self.core_name}: {self.cycles} cyc, "
                f"{self.energy_pj/1000:.0f} nJ>")


class BenchmarkEvaluation:
    """All the numbers the schedulers need for one benchmark."""

    def __init__(self, name, ctx):
        self.name = name
        self.ctx = ctx
        self.baselines = {}     # core name -> CoreBaseline
        self.estimates = {}     # (bsa, core name) -> {loop key: RegionEstimate}
        self.plans = {}         # bsa -> {loop key: plan}

    @property
    def forest(self):
        return self.ctx.forest

    def baseline(self, core_name):
        return self.baselines[core_name]

    def estimate_for(self, bsa, core_name, loop_key):
        return self.estimates.get((bsa, core_name), {}).get(loop_key)

    def bsas_targeting(self, loop_key):
        return sorted(
            bsa for bsa, plans in self.plans.items() if loop_key in plans
        )

    def __repr__(self):
        return (f"<BenchmarkEvaluation {self.name}: "
                f"{len(self.baselines)} cores, "
                f"{len(self.estimates)} (bsa,core) sets>")


def evaluate_benchmark(tdg, core_names=("IO2", "OOO2", "OOO4", "OOO6"),
                       bsa_names=("simd", "dp_cgra", "ns_df", "trace_p"),
                       max_invocations=8, detailed=False, name=None,
                       engine=None):
    """Evaluate one TDG across cores and BSAs.

    *max_invocations* caps how many dynamic invocations of each region
    are transformed per (BSA, core); the rest extrapolate (the paper's
    windowed approach bounds work the same way).  *engine* selects the
    timing engine (``"auto"``/``"object"``/``"fast"``, see
    :func:`repro.tdg.fastpath.resolve_engine`); the engines are
    byte-identical, so the choice only affects throughput.

    *detailed* is either one flag for every BSA or a per-BSA mapping
    ``{bsa: bool}`` (a missing entry means fast) — the form the
    :class:`~repro.fidelity.arbiter.ModelArbiter` produces when it
    upgrades only the models whose measured error exceeds the budget.
    """
    engine = resolve_engine(engine)
    if not isinstance(detailed, dict):
        detailed = {bsa: bool(detailed) for bsa in bsa_names}
    with span("exocore.evaluate", benchmark=name or tdg.program.name):
        ctx = AnalysisContext(tdg)
        evaluation = BenchmarkEvaluation(name or tdg.program.name, ctx)
        trace = tdg.trace.instructions

        # The baseline trace is evaluated under every core config, so
        # lower it once up front and amortize across runs.
        baseline_stream = trace
        if engine == "fast":
            try:
                baseline_stream = lower_stream(trace)
            except LoweringError:
                pass

        # ---- baselines --------------------------------------------------
        for core_name in core_names:
            with span("exocore.baseline", core=core_name):
                config = core_by_name(core_name)
                eng = make_engine(config, engine,
                                  collect_commit_times=True)
                result = eng.run(baseline_stream)
                commit_times = result.commit_times
                per_loop_cycles = attribute_baseline(
                    commit_times, ctx.intervals, result.cycles)
                energy_model = ctx.energy_model(config)
                total_energy = energy_model.evaluate(trace, result.cycles)
                per_loop_energy = {}
                for key, spans in ctx.intervals.items():
                    if not spans:
                        per_loop_energy[key] = 0.0
                        continue
                    stream = _concat(trace, spans)
                    breakdown = energy_model.evaluate(
                        stream, per_loop_cycles.get(key, 0))
                    per_loop_energy[key] = breakdown.total_pj
                evaluation.baselines[core_name] = CoreBaseline(
                    core_name, result.cycles, total_energy.total_pj,
                    per_loop_cycles, per_loop_energy)

        # ---- accelerated estimates --------------------------------------
        for bsa in bsa_names:
            model = BSA_REGISTRY[bsa](
                detailed=detailed.get(bsa, False))
            with span("accel.find_candidates", bsa=bsa) as current:
                plans = model.find_candidates(ctx)
                current.set(candidates=len(plans))
            evaluation.plans[bsa] = plans
            for core_name in core_names:
                config = core_by_name(core_name)
                estimates = {}
                with span("accel.estimate_regions", bsa=bsa,
                          core=core_name):
                    for key, plan in plans.items():
                        estimate = model.evaluate_region(
                            ctx, plan, config,
                            max_invocations=max_invocations,
                            engine=engine)
                        if estimate is not None:
                            estimates[key] = estimate
                counter("repro_region_estimates_total",
                        "per-region accelerated estimates produced") \
                    .inc(len(estimates), bsa=bsa)
                evaluation.estimates[(bsa, core_name)] = estimates
        return evaluation


def _concat(trace, spans):
    stream = []
    for start, end in spans:
        stream.extend(trace[start:end])
    return stream
