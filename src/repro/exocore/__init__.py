"""ExoCore: multi-BSA core organization and scheduling (paper sec. 3).

- :mod:`repro.exocore.evaluator` — evaluates one benchmark: baseline
  core runs plus per-region accelerated estimates for every BSA.
- :mod:`repro.exocore.schedule` — the Oracle scheduler (energy-delay
  with the 10%-slowdown rule) and the Amdahl-tree scheduler (Fig. 9),
  composing per-region choices into whole-program cycles/energy.
- :mod:`repro.exocore.timeline` — dynamic switching traces (Fig. 14).
"""

from repro.exocore.evaluator import (
    BenchmarkEvaluation, evaluate_benchmark,
)
from repro.exocore.schedule import (
    ScheduleResult, oracle_schedule, amdahl_schedule,
)
from repro.exocore.timeline import switching_timeline

__all__ = [
    "BenchmarkEvaluation",
    "evaluate_benchmark",
    "ScheduleResult",
    "oracle_schedule",
    "amdahl_schedule",
    "switching_timeline",
]
