"""Dynamic switching timelines (paper Figure 14).

Produces, for one benchmark under one schedule, a time series of
(baseline-cycle position, ExoCore speedup, active unit): each dynamic
invocation of each scheduled region contributes one segment, showing
how the application switches between the general core and its BSAs
over time.
"""


class TimelineSegment:
    """One dynamic region invocation on the timeline."""

    __slots__ = ("start_cycle", "end_cycle", "unit", "speedup",
                 "loop_key")

    def __init__(self, start_cycle, end_cycle, unit, speedup, loop_key):
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.unit = unit          # "gpp" or a BSA name
        self.speedup = speedup    # baseline / accelerated, this region
        self.loop_key = loop_key

    def __repr__(self):
        return (f"<Segment {self.unit} [{self.start_cycle}, "
                f"{self.end_cycle}) x{self.speedup:.2f}>")


def switching_timeline(evaluation, schedule, core_name=None,
                       with_attribution=False):
    """Build the Fig. 14-style series for *schedule*.

    Returns a list of :class:`TimelineSegment`, ordered by baseline
    execution time.  Speedups are per-region aggregates (the paper's
    trace is similarly region-granular: switching happens at loop
    entries).

    With *with_attribution*, returns ``(segments, crit_histogram)``
    where the histogram maps critical-path
    :class:`~repro.tdg.mudg.EdgeKind` to bind counts from the baseline
    timing run — the stall-class material the modeled-timeline trace
    track (:mod:`repro.obs.timeline`) attaches to its segments.
    """
    from repro.obs import span
    with span("exocore.timeline",
              core=core_name or schedule.core_name):
        return _switching_timeline(evaluation, schedule, core_name,
                                   with_attribution)


def _switching_timeline(evaluation, schedule, core_name,
                        with_attribution):
    core_name = core_name or schedule.core_name
    baseline = evaluation.baseline(core_name)
    ctx = evaluation.ctx
    trace = ctx.tdg.trace.instructions

    # Choose, per trace index interval, the innermost *scheduled* loop.
    chosen = {}
    for key, unit in schedule.assignment.items():
        if unit == "gpp":
            continue
        estimate = evaluation.estimate_for(unit, core_name, key)
        base_cycles = baseline.per_loop_cycles.get(key, 0)
        if estimate is None or not estimate.cycles:
            continue
        speedup = base_cycles / estimate.cycles if base_cycles else 1.0
        for start, end in ctx.intervals.get(key, ()):
            chosen[(start, end)] = (unit, speedup, key)

    # Need commit times to place segments on the baseline time axis.
    from repro.core_model import core_by_name
    from repro.tdg.engine import TimingEngine
    engine = TimingEngine(core_by_name(core_name),
                          collect_commit_times=True)
    timing = engine.run(trace)
    commit_times = timing.commit_times

    segments = []
    covered_until = 0
    for (start, end), (unit, speedup, key) in sorted(chosen.items()):
        if start < covered_until:
            continue   # nested within an already-offloaded region
        t_start = commit_times[start - 1] if start > 0 else 0
        t_end = commit_times[end - 1] if end > 0 else 0
        if t_end <= t_start:
            continue
        if t_start > (segments[-1].end_cycle if segments else 0):
            prev_end = segments[-1].end_cycle if segments else 0
            segments.append(TimelineSegment(
                prev_end, t_start, "gpp", 1.0, None))
        segments.append(TimelineSegment(t_start, t_end, unit, speedup,
                                        key))
        covered_until = end
    total = commit_times[-1] if commit_times else 0
    tail_start = segments[-1].end_cycle if segments else 0
    if total > tail_start:
        segments.append(TimelineSegment(tail_start, total, "gpp", 1.0,
                                        None))
    if with_attribution:
        return segments, dict(timing.crit_histogram or {})
    return segments
