"""Perf-trajectory benchmark harness (``repro bench``).

The fastpath engine (:mod:`repro.tdg.fastpath`) exists for throughput,
so throughput is a tracked artifact: each run produces a canonical
``BENCH_<date>.json`` recording per-stage nanoseconds for a smoke
workload, the object/fast speedup ratios, and full-sweep throughput in
engine-evaluations per second.  Checked-in BENCH files form the perf
trajectory of the repo; CI re-runs the smoke bench and fails when the
*ratios* regress more than a tolerance against the newest checked-in
baseline (ratios, not absolute nanoseconds — those are machine-bound,
the ratios are not).

Stage timings are measured with obs spans (:func:`repro.obs.span`)
under an isolated recorder, so a bench run never pollutes — and is
never polluted by — ambient observability state.  The minimum duration
across repetitions is reported, the standard estimator for the noise
floor of a hot loop.

Schema (``"schema": 1``)::

    commit       git revision the numbers belong to
    date         YYYY-MM-DD (override: $REPRO_BENCH_DATE)
    engine       {numpy, kernel, default} capability snapshot
    workload     {name, core, scale, instructions, reps}
    stages_ns    {construct, lower, eval_object, eval_fast,
                  eval_fast_cold} minimum wall ns per stage
    per_inst_ns  {object, fast} single-evaluation ns per instruction
    speedup      {single_eval, cold_eval} object/fast ratios
    sweep        {names, scale, max_invocations, engine_runs,
                  evals_per_sec_object, evals_per_sec_fast}
    obs          {on_ns, off_ns, overhead_fraction} cost of full
                 observability (spans + flight recorder) on an
                 object-engine run, gated at OBS_OVERHEAD_CEILING

Everything except the timing numbers is deterministic on a given
machine; :func:`canonical_fields` strips the timing fields so tests
can assert exactly that.
"""

import json
import time

from repro.artifacts import (
    artifact_filename, commit as _commit, dumps_artifact,
    latest_artifact, write_artifact,
)
from repro.obs import isolated, span

#: Bump when the payload shape changes incompatibly.
SCHEMA_VERSION = 1

#: Smoke workload: small, exercises the full accel path, fast enough
#: for CI (the golden-regression suite uses the same benchmarks).
DEFAULT_WORKLOAD = "conv"
DEFAULT_CORE = "OOO2"
DEFAULT_SCALE = 0.1
DEFAULT_REPS = 5
DEFAULT_SWEEP_NAMES = ("conv",)

#: Acceptance floor: the lowered-stream hot path must beat the object
#: engine by at least this factor on the smoke workload.
SINGLE_EVAL_FLOOR = 5.0

#: Ceiling on the fractional cost of observability v2 (span recording
#: plus a flight-recorder event) around one object-engine run.  The
#: probe is deliberately the *object* engine: it runs for
#: milliseconds, so the gate measures instrumentation against real
#: work, not against a microsecond fastpath call where any fixed cost
#: looks enormous.
OBS_OVERHEAD_CEILING = 0.02

#: Stages reported in ``stages_ns``, in pipeline order.
STAGES = ("construct", "lower", "eval_object", "eval_fast",
          "eval_fast_cold")

_RATIO_KEYS = ("single_eval", "cold_eval")


def _bench_date():
    from repro.artifacts import artifact_date
    return artifact_date("REPRO_BENCH_DATE")


def _min_span_ns(recorder, name):
    """Minimum duration of all spans called *name*, in integer ns."""
    durs = [r["dur"] for r in recorder.export() if r["name"] == name]
    if not durs:
        raise RuntimeError(f"bench stage {name!r} recorded no spans")
    return int(min(durs) * 1000)       # recorder stores microseconds


def _measure_obs_overhead(engine, trace, reps):
    """Min-of-*reps* cost of an instrumented vs bare engine run.

    "On" wraps the run in a span and records one flight-recorder
    event — the per-task instrumentation the sweep adds; "off" is the
    bare run with span recording disabled.  Minimum over repetitions
    on both sides keeps scheduler noise out of the fraction (which
    can still come out slightly negative; the gate clamps at zero).
    """
    from repro.obs import (
        disable, enable, flight_event, is_enabled, isolated, span,
    )
    reps = max(1, int(reps))
    on_ns = off_ns = None
    with isolated():
        for _ in range(reps):
            started = time.perf_counter_ns()
            with span("bench.obs_probe"):
                engine.run(trace)
            flight_event("bench.obs_probe")
            elapsed = time.perf_counter_ns() - started
            on_ns = elapsed if on_ns is None else min(on_ns, elapsed)
    was_enabled = is_enabled()
    disable()
    try:
        for _ in range(reps):
            started = time.perf_counter_ns()
            engine.run(trace)
            elapsed = time.perf_counter_ns() - started
            off_ns = elapsed if off_ns is None \
                else min(off_ns, elapsed)
    finally:
        if was_enabled:
            enable()
    return {
        "on_ns": on_ns,
        "off_ns": off_ns,
        "overhead_fraction": (on_ns / off_ns - 1.0) if off_ns else 0.0,
    }


def collect_bench(workload=DEFAULT_WORKLOAD, core=DEFAULT_CORE,
                  scale=DEFAULT_SCALE, reps=DEFAULT_REPS,
                  sweep_names=DEFAULT_SWEEP_NAMES,
                  sweep_scale=DEFAULT_SCALE, max_invocations=2):
    """Run the smoke bench and return the BENCH payload dict."""
    from repro.core_model import core_by_name
    from repro.dse.sweep import run_sweep
    from repro.tdg.engine import TimingEngine
    from repro.tdg.fastpath import (
        HAVE_NUMPY, FastTimingEngine, kernel_available, lower_stream,
        resolve_engine,
    )
    from repro.workloads import WORKLOADS

    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}")
    reps = max(1, int(reps))
    config = core_by_name(core)

    with isolated() as (_registry, recorder):
        with span("bench.construct", workload=workload, scale=scale):
            tdg = WORKLOADS[workload].construct_tdg(scale=scale)
        trace = list(tdg.trace.instructions)

        lowered = None
        for _ in range(reps):
            with span("bench.lower"):
                lowered = lower_stream(trace)

        object_engine = TimingEngine(config)
        fast_engine = FastTimingEngine(config)
        result_object = result_fast = None
        for _ in range(reps):
            with span("bench.eval_object"):
                result_object = object_engine.run(trace)
        # The fast path is so cheap (tens of microseconds) that its
        # minimum needs many more samples to escape scheduler noise —
        # and 10x reps of it still costs less than one object run.
        for _ in range(reps * 10):
            with span("bench.eval_fast"):
                result_fast = fast_engine.run(lowered)
        for _ in range(reps):
            with span("bench.eval_fast_cold"):
                FastTimingEngine(config).run(trace)

        if result_object.cycles != result_fast.cycles:
            raise RuntimeError(
                f"engines disagree on {workload!r}: object="
                f"{result_object.cycles} fast={result_fast.cycles} "
                "(refusing to publish a bench for broken numbers)")

        stages_ns = {stage: _min_span_ns(recorder, f"bench.{stage}")
                     for stage in STAGES}

    instructions = len(trace)
    per_inst_ns = {
        "object": stages_ns["eval_object"] / max(1, instructions),
        "fast": stages_ns["eval_fast"] / max(1, instructions),
    }
    speedup = {
        "single_eval": stages_ns["eval_object"]
        / max(1, stages_ns["eval_fast"]),
        "cold_eval": stages_ns["eval_object"]
        / max(1, stages_ns["eval_fast_cold"]),
    }

    # Full-sweep throughput: cold run per engine, counting engine
    # invocations via the obs registry so "evals" means actual timing
    # runs (baselines + region estimates), not benchmarks.
    sweep_info = {
        "names": sorted(sweep_names),
        "scale": sweep_scale,
        "max_invocations": max_invocations,
    }
    for engine in ("object", "fast"):
        with isolated() as (registry, _recorder):
            started = time.perf_counter_ns()
            run_sweep(names=sorted(sweep_names), scale=sweep_scale,
                      max_invocations=max_invocations,
                      with_amdahl=False, use_cache=False,
                      engine=engine)
            elapsed_ns = time.perf_counter_ns() - started
            runs = registry.total("repro_engine_runs_total")
        sweep_info["engine_runs"] = runs
        sweep_info[f"evals_per_sec_{engine}"] = \
            runs / (elapsed_ns / 1e9) if elapsed_ns else 0.0

    obs_info = _measure_obs_overhead(object_engine, trace, reps)

    return {
        "schema": SCHEMA_VERSION,
        "commit": _commit(),
        "date": _bench_date(),
        "engine": {
            "numpy": HAVE_NUMPY,
            "kernel": kernel_available(),
            "default": resolve_engine(None),
        },
        "workload": {
            "name": workload,
            "core": core,
            "scale": scale,
            "instructions": instructions,
            "reps": reps,
        },
        "stages_ns": stages_ns,
        "per_inst_ns": per_inst_ns,
        "speedup": speedup,
        "sweep": sweep_info,
        "obs": obs_info,
    }


# ---------------------------------------------------------------------------
# Canonical serialization and the BENCH_<date>.json convention.

def dumps_bench(payload):
    """Canonical serialization (:func:`repro.artifacts.dumps_artifact`)."""
    return dumps_artifact(payload)


def canonical_fields(payload):
    """The machine-deterministic subset of a BENCH payload.

    Strips every wall-clock-derived number (stage timings, ratios,
    throughput); what remains must be identical across back-to-back
    runs on one machine — the property the harness tests assert.
    """
    out = {k: v for k, v in payload.items()
           if k not in ("stages_ns", "per_inst_ns", "speedup", "obs")}
    sweep = dict(payload.get("sweep", {}))
    for key in list(sweep):
        if key.startswith("evals_per_sec"):
            del sweep[key]
    out["sweep"] = sweep
    return out


def bench_filename(when=None):
    return artifact_filename("BENCH", when, env_var="REPRO_BENCH_DATE")


def write_bench(payload, directory="."):
    """Write the canonical BENCH_<date>.json; returns its path."""
    return write_artifact(payload, "BENCH", directory,
                          env_var="REPRO_BENCH_DATE")


def load_bench(path):
    with open(path) as handle:
        return json.load(handle)


def latest_bench(directory="."):
    """Newest checked-in BENCH_*.json by date-in-name, or ``None``."""
    return latest_artifact("BENCH", directory)


# ---------------------------------------------------------------------------
# Regression gate.

def _sweep_ratio(payload):
    sweep = payload.get("sweep", {})
    obj = sweep.get("evals_per_sec_object", 0.0)
    fast = sweep.get("evals_per_sec_fast", 0.0)
    return (fast / obj) if obj else None


def check_regression(current, baseline, tolerance=0.30):
    """Compare *current* against *baseline*; return failure strings.

    Only dimensionless ratios are gated (single-eval speedup,
    cold-eval speedup, sweep-throughput ratio): absolute nanoseconds
    depend on the machine, the ratios on the code.  A ratio may fall
    up to *tolerance* (fractional) below the baseline before it
    counts as a regression; the single-eval speedup additionally has
    the hard acceptance floor :data:`SINGLE_EVAL_FLOOR`.
    """
    failures = []
    if current.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: current={current.get('schema')} "
            f"baseline={baseline.get('schema')}")
        return failures

    single = current.get("speedup", {}).get("single_eval", 0.0)
    if single < SINGLE_EVAL_FLOOR:
        failures.append(
            f"single_eval speedup {single:.2f}x is below the "
            f"{SINGLE_EVAL_FLOOR:.0f}x acceptance floor")

    for key in _RATIO_KEYS:
        base = baseline.get("speedup", {}).get(key)
        cur = current.get("speedup", {}).get(key)
        if base is None or cur is None:
            continue
        if cur < base * (1.0 - tolerance):
            failures.append(
                f"{key} speedup regressed: {cur:.2f}x vs baseline "
                f"{base:.2f}x (tolerance {tolerance:.0%})")

    obs = current.get("obs")
    if obs is not None:
        overhead = max(0.0, obs.get("overhead_fraction", 0.0))
        if overhead > OBS_OVERHEAD_CEILING:
            failures.append(
                f"observability overhead {overhead:.1%} exceeds the "
                f"{OBS_OVERHEAD_CEILING:.0%} ceiling")

    base_ratio = _sweep_ratio(baseline)
    cur_ratio = _sweep_ratio(current)
    if base_ratio is not None and cur_ratio is not None \
            and cur_ratio < base_ratio * (1.0 - tolerance):
        failures.append(
            f"sweep throughput ratio regressed: {cur_ratio:.2f}x vs "
            f"baseline {base_ratio:.2f}x (tolerance {tolerance:.0%})")
    return failures


def format_bench(payload):
    """Human-readable one-screen summary (stderr of ``repro bench``)."""
    stages = payload["stages_ns"]
    lines = [
        f"workload {payload['workload']['name']} "
        f"({payload['workload']['instructions']} insts, "
        f"core {payload['workload']['core']}, "
        f"scale {payload['workload']['scale']}, "
        f"min of {payload['workload']['reps']} reps)",
        f"engine: numpy={payload['engine']['numpy']} "
        f"kernel={payload['engine']['kernel']} "
        f"default={payload['engine']['default']}",
    ]
    for stage in STAGES:
        lines.append(f"  {stage:<16} {stages[stage] / 1000:>12.1f} us")
    lines.append(
        f"  per-inst: object {payload['per_inst_ns']['object']:.1f} ns"
        f", fast {payload['per_inst_ns']['fast']:.1f} ns")
    lines.append(
        f"  speedup: single_eval "
        f"{payload['speedup']['single_eval']:.1f}x, cold_eval "
        f"{payload['speedup']['cold_eval']:.2f}x")
    sweep = payload["sweep"]
    lines.append(
        f"  sweep [{', '.join(sweep['names'])}] "
        f"{sweep['engine_runs']} engine runs: "
        f"{sweep['evals_per_sec_object']:.1f} evals/s object, "
        f"{sweep['evals_per_sec_fast']:.1f} evals/s fast")
    obs = payload.get("obs")
    if obs:
        lines.append(
            f"  obs overhead: {obs['overhead_fraction']:+.2%} "
            f"(ceiling {OBS_OVERHEAD_CEILING:.0%})")
    return "\n".join(lines)
