"""Cache backends for multi-node sweeps: HTTP peer + tiered read-through.

A fleet shares results through content keys: every node computes the
same :func:`repro.dse.cache.cache_key` for the same evaluation, and
entries are canonical bytes (:func:`repro.dse.cache.dumps_entry`), so
an entry fetched from any peer is byte-identical to one computed
locally.  That property is what makes peer transfer safe to verify
with a checksum and safe to read-repair into the local tier.

:class:`HTTPPeerBackend` speaks the coordinator's cache wire protocol
(``GET``/``PUT /v1/cache/{key}``, body = canonical entry blob,
``X-Repro-Checksum`` = hex sha256 of the body).  A response that fails
the checksum, fails to parse, or claims the wrong key/format is
*corrupt*: the bytes are quarantined for post-mortem (same capped
quarantine as the on-disk backend), the miss is counted, and the
caller recomputes — corruption on the wire can never poison a cache.

:class:`TieredCache` stacks a local directory under a peer: loads read
through (local first, then verified peer, repairing the local copy),
stores write through (local always, peer best-effort).  A stale or
corrupt local entry is thereby healed from a verified peer copy.
"""

import json
import os
import urllib.error
import urllib.request
from pathlib import Path

from repro.dse.cache import (
    CACHE_FORMAT, CacheBackend, dumps_entry, entry_checksum,
    entry_payload,
)
from repro.obs import counter, flight_event

#: Checksum header on every cache-entry transfer.
CHECKSUM_HEADER = "X-Repro-Checksum"

#: Max files kept in the peer quarantine directory (same cap as the
#: on-disk backend's, and shared with it when tiers share a root).
PEER_QUARANTINE_CAP = 32


class PeerUnavailable(Exception):
    """The peer could not be reached (connection/timeout/5xx)."""


class HTTPPeerBackend(CacheBackend):
    """Content-addressed cache served by a peer node over HTTP.

    *base_url* is the peer's root (``http://host:port``); entries live
    at ``/v1/cache/{key}``.  *quarantine_dir* (optional) is where
    corrupt response bytes are preserved; without it they are
    discarded after counting.

    ``load`` returns ``None`` on miss, corruption, *and* peer
    unavailability — a dead peer degrades to a cold cache, never an
    error.  ``store`` is best-effort for the same reason.  Use
    :meth:`load_entry` when the caller needs the full payload (meta
    included) for read-repair.
    """

    def __init__(self, base_url, quarantine_dir=None, timeout=10.0):
        self.base_url = base_url.rstrip("/")
        self.quarantine_dir = Path(quarantine_dir) \
            if quarantine_dir is not None else None
        self.timeout = timeout

    def _url(self, key):
        return f"{self.base_url}/v1/cache/{key}"

    # ------------------------------------------------------------------
    # Load path: fetch -> checksum -> validate -> payload.

    def load(self, key):
        payload = self.load_entry(key)
        return payload.get("record") if payload is not None else None

    def load_entry(self, key):
        """Fetch and verify the full entry payload, or ``None``.

        Verification layers, in order: transport success, body
        checksum against ``X-Repro-Checksum``, JSON well-formedness,
        and payload self-description (``format`` and ``key`` must
        match what was asked for).  Any failure quarantines the bytes
        and reports a miss.
        """
        from repro.resilience.faultinject import consume_torn_peer_get

        request = urllib.request.Request(self._url(key), method="GET")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                blob = response.read()
                expected = response.headers.get(CHECKSUM_HEADER)
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 404:
                counter("repro_peer_cache_misses_total",
                        "peer cache lookups that missed").inc()
                return None
            counter("repro_peer_cache_errors_total",
                    "peer cache transfers that failed").inc()
            return None
        except (urllib.error.URLError, OSError, TimeoutError):
            counter("repro_peer_cache_errors_total",
                    "peer cache transfers that failed").inc()
            return None

        # Deterministic chaos hook: a ``tornpeer:get=N`` fault tears
        # the N-th successful GET body client-side, exactly like a
        # connection dropped mid-transfer would.
        if consume_torn_peer_get():
            blob = blob[:len(blob) // 2]

        if expected is not None and entry_checksum(blob) != expected:
            self._quarantine(key, blob, "checksum-mismatch")
            return None
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._quarantine(key, blob, "unparseable")
            return None
        if not isinstance(payload, dict) \
                or payload.get("format") != CACHE_FORMAT \
                or payload.get("key") != key \
                or "record" not in payload:
            self._quarantine(key, blob, "wrong-identity")
            return None
        counter("repro_peer_cache_hits_total",
                "verified peer cache hits").inc()
        flight_event("peer_cache.hit", key=key[:12])
        return payload

    def _quarantine(self, key, blob, why):
        """Preserve corrupt response bytes (capped), count, move on."""
        counter("repro_peer_cache_corrupt_total",
                "peer cache responses that failed verification") \
            .inc(why=why)
        flight_event("peer_cache.quarantine", key=key[:12], why=why)
        if self.quarantine_dir is None:
            return
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            existing = sum(1 for entry in self.quarantine_dir.iterdir()
                           if entry.is_file())
            if existing >= PEER_QUARANTINE_CAP:
                return
            target = self.quarantine_dir / f"peer-{key}.json"
            tmp = target.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, target)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Store path: canonical blob + checksum header.

    def store(self, key, record, meta=None):
        """Best-effort PUT of the canonical entry to the peer.

        Returns True when the peer acknowledged the write.  Failure is
        contained (counted, never raised): the local tier already owns
        the entry, and the peer can be refilled by any later store or
        by its own computation of the same key.
        """
        blob = dumps_entry(entry_payload(key, record, meta=meta)) \
            .encode("utf-8")
        request = urllib.request.Request(
            self._url(key), data=blob, method="PUT",
            headers={"Content-Type": "application/json",
                     CHECKSUM_HEADER: entry_checksum(blob)})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                response.read()
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            if isinstance(exc, urllib.error.HTTPError):
                exc.close()
            counter("repro_peer_cache_errors_total",
                    "peer cache transfers that failed").inc()
            return False
        counter("repro_peer_cache_stores_total",
                "entries pushed to a peer cache").inc()
        return True

    def __contains__(self, key):
        return self.load_entry(key) is not None


class TieredCache(CacheBackend):
    """Local directory backed by a peer: read-through + write-through.

    ``load`` order: local hit wins; otherwise a verified peer entry is
    **read-repaired** into the local tier (stored through the local
    backend's atomic write, so the repaired entry is byte-identical to
    a locally computed one — including its ``meta``) and returned.  A
    local entry that was quarantined as corrupt is therefore healed on
    the very next load, provided any peer still holds a good copy.

    ``store`` writes the local tier first (durability), then pushes to
    the peer best-effort (sharing).  ``root``/``path_for`` delegate to
    the local tier so existing callers (blackbox dir, runlog, exports)
    keep working when handed a tiered cache.
    """

    def __init__(self, local, peer, write_through=True):
        self.local = local
        self.peer = peer
        self.write_through = write_through

    @property
    def root(self):
        return self.local.root

    def path_for(self, key):
        return self.local.path_for(key)

    @property
    def quarantine_dir(self):
        return self.local.quarantine_dir

    def load(self, key):
        record = self.local.load(key)
        if record is not None:
            return record
        if hasattr(self.peer, "load_entry"):
            # One fetch, meta included: a corrupt/torn response is a
            # miss for *this* load (the caller recomputes or retries),
            # and a verified one repairs the local tier byte-for-byte.
            payload = self.peer.load_entry(key)
        else:
            record = self.peer.load(key)
            payload = entry_payload(key, record) \
                if record is not None else None
        if payload is None:
            return None
        counter("repro_cache_read_repairs_total",
                "local entries repaired from a verified peer").inc()
        flight_event("cache.read_repair", key=key[:12])
        self.local.store(key, payload["record"],
                         meta=payload.get("meta"))
        return payload["record"]

    def store(self, key, record, meta=None):
        path = self.local.store(key, record, meta=meta)
        if self.write_through:
            self.peer.store(key, record, meta=meta)
        return path

    def iter_entries(self):
        return self.local.iter_entries()

    def __contains__(self, key):
        return key in self.local or key in self.peer
