"""Lease-based shard assignment with expiry, stealing, and hedging.

The coordinator hands out per-benchmark shards as time-limited
leases.  The design leans entirely on two properties the rest of the
system already guarantees:

- results are **content-keyed** — every node computes the same cache
  key for the same shard, and
- results are **byte-deterministic** — any two honest evaluations of
  the same shard produce identical canonical payloads.

Together they make duplicate execution harmless, which is what lets
the table be aggressive about availability:

- a lease that expires (node died, hung, or partitioned) returns the
  shard to the pending queue for the next claimant (*work stealing* —
  idle nodes pull; there is no push scheduling to go wrong);
- an idle node with nothing pending is granted a **hedged** duplicate
  lease on the oldest still-running shard (straggler mitigation);
- the **first verified result wins**; later duplicates are
  acknowledged and discarded.

Deterministic: grant order is submission order, hedging prefers the
longest-running shard, and ties break lexicographically.  Clock is
injectable for tests.
"""

import time

from repro.obs import counter, flight_event

#: Default seconds a lease stays valid without completion.
DEFAULT_LEASE_TTL = 30.0

#: Default seconds a shard must have been running before an idle node
#: is hedged onto it.
DEFAULT_HEDGE_AFTER = 10.0


class Lease:
    """One grant of one shard to one node."""

    __slots__ = ("name", "node_id", "granted_at", "expires_at",
                 "hedged")

    def __init__(self, name, node_id, granted_at, ttl, hedged=False):
        self.name = name
        self.node_id = node_id
        self.granted_at = granted_at
        self.expires_at = granted_at + ttl
        self.hedged = hedged

    def to_json(self, now):
        return {
            "name": self.name,
            "node_id": self.node_id,
            "age_seconds": round(now - self.granted_at, 3),
            "expires_in_seconds": round(self.expires_at - now, 3),
            "hedged": self.hedged,
        }


class LeaseTable:
    """Shard state machine: pending -> leased -> done."""

    def __init__(self, names, lease_ttl=DEFAULT_LEASE_TTL,
                 hedge_after=DEFAULT_HEDGE_AFTER,
                 clock=time.monotonic):
        self.names = list(names)
        self.lease_ttl = lease_ttl
        self.hedge_after = hedge_after
        self.clock = clock
        self.pending = list(self.names)     # submission order
        self.leases = {}                    # name -> [Lease, ...]
        self.done = {}                      # name -> payload
        self.completed_by = {}              # name -> node_id

    # ------------------------------------------------------------------
    # Expiry and release.

    def expire(self):
        """Drop stale leases; re-queue shards left with no holder."""
        now = self.clock()
        for name in list(self.leases):
            held = self.leases[name]
            fresh = [lease for lease in held if lease.expires_at > now]
            expired = len(held) - len(fresh)
            if expired:
                counter("repro_cluster_leases_expired_total",
                        "leases that timed out before a result").inc(
                            expired)
                flight_event("cluster.lease_expired", shard=name,
                             count=expired)
            if fresh:
                self.leases[name] = fresh
            else:
                del self.leases[name]
                if name not in self.done and name not in self.pending:
                    self.pending.append(name)

    def release_node(self, node_id):
        """Drop every lease held by a (dead) node; re-queue orphans."""
        for name in list(self.leases):
            held = [lease for lease in self.leases[name]
                    if lease.node_id != node_id]
            if len(held) == len(self.leases[name]):
                continue
            if held:
                self.leases[name] = held
            else:
                del self.leases[name]
                if name not in self.done and name not in self.pending:
                    self.pending.append(name)
                    flight_event("cluster.shard_requeued", shard=name,
                                 node=node_id)

    # ------------------------------------------------------------------
    # Claim path (worker pull).

    def claim(self, node_id):
        """Grant this node a shard, or ``None`` when there is nothing.

        Pending shards first (in submission order).  With nothing
        pending, hedge: duplicate the oldest shard that has been
        running longer than ``hedge_after``, has the fewest holders,
        and is not already held by this node.
        """
        self.expire()
        now = self.clock()
        if self.pending:
            name = self.pending.pop(0)
            lease = Lease(name, node_id, now, self.lease_ttl)
            self.leases.setdefault(name, []).append(lease)
            counter("repro_cluster_leases_granted_total",
                    "shard leases granted").inc(kind="primary")
            flight_event("cluster.lease_granted", shard=name,
                         node=node_id)
            return lease

        candidates = []
        for name, held in self.leases.items():
            if name in self.done:
                continue
            if any(lease.node_id == node_id for lease in held):
                continue
            oldest = min(lease.granted_at for lease in held)
            if now - oldest < self.hedge_after:
                continue
            candidates.append((len(held), oldest, name))
        if not candidates:
            return None
        _, _, name = min(candidates)
        lease = Lease(name, node_id, now, self.lease_ttl, hedged=True)
        self.leases[name].append(lease)
        counter("repro_cluster_leases_granted_total",
                "shard leases granted").inc(kind="hedged")
        flight_event("cluster.lease_hedged", shard=name, node=node_id)
        return lease

    # ------------------------------------------------------------------
    # Completion (first verified result wins).

    def complete(self, name, node_id, payload):
        """Accept a shard result; False for a duplicate (discarded).

        The caller verifies the payload (checksum + identity) before
        calling.  Duplicates are expected under hedging and after
        lease expiry + redo; byte determinism makes discarding safe.
        """
        if name in self.done:
            counter("repro_cluster_results_total",
                    "shard results by disposition").inc(
                        disposition="duplicate")
            flight_event("cluster.result_duplicate", shard=name,
                         node=node_id)
            return False
        self.done[name] = payload
        self.completed_by[name] = node_id
        self.leases.pop(name, None)
        if name in self.pending:        # completed while re-queued
            self.pending.remove(name)
        counter("repro_cluster_results_total",
                "shard results by disposition").inc(disposition="won")
        flight_event("cluster.result_accepted", shard=name,
                     node=node_id)
        return True

    # ------------------------------------------------------------------
    # Introspection.

    @property
    def all_done(self):
        return len(self.done) == len(self.names)

    def counts(self):
        leased = sum(1 for name in self.leases if name not in self.done)
        return {
            "total": len(self.names),
            "done": len(self.done),
            "pending": len(self.pending),
            "leased": leased,
        }

    def to_json(self):
        now = self.clock()
        return {
            **self.counts(),
            "leases": [lease.to_json(now)
                       for name in sorted(self.leases)
                       for lease in self.leases[name]],
            "completed_by": dict(sorted(self.completed_by.items())),
        }
