"""Fleet membership for an evaluation service node.

``repro serve --worker-of URL`` runs a normal evaluation service plus
one :class:`FleetWorker`: an asyncio loop that registers with the
coordinator, heartbeats on its own cadence (so a long evaluation
never looks like a death), pulls shard leases, evaluates them through
the service's standard path (tiered cache -> coalesce -> slots ->
pool), and pushes checksummed results back.

Failure handling mirrors the circuit-breaker client's philosophy —
the coordinator being unreachable is an expected state, not an error:
the worker backs off, keeps serving its local HTTP traffic, and
re-registers when the partition heals (or when the coordinator
evicted it for missed heartbeats).  Everything here is driven by the
deterministic fault harness: ``nodekill`` SIGKILLs the whole process
on lease accept, ``hbdrop``/``hbdelay`` starve or slow heartbeats,
``partition`` makes every coordinator call fail for a window.
"""

import asyncio
import json
import os
import signal
import socket
import urllib.error
import urllib.request

from repro.obs import counter, flight_event
from repro.resilience.policy import EvaluationTimeout

#: Base seconds between reconnect attempts when the coordinator is
#: unreachable (doubles up to the max below).
BACKOFF_BASE = 0.25
BACKOFF_MAX = 5.0

#: Attempts to deliver one computed result before giving up and
#: letting the lease expire (another node will redo the shard).
RESULT_ATTEMPTS = 5


class CoordinatorUnreachable(Exception):
    """The coordinator did not answer (connection/timeout/5xx)."""


class ClusterClient:
    """Minimal synchronous JSON client for the coordinator protocol.

    Call it from a thread (``asyncio.to_thread``) — the worker loop
    does — so the service's event loop never blocks on the network.
    """

    def __init__(self, base_url, timeout=10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _post(self, path, body=None):
        from repro.resilience.faultinject import partition_active

        if partition_active():
            raise CoordinatorUnreachable(
                "injected partition: coordinator unreachable")
        data = json.dumps(body or {}).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.status, json.loads(
                    response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": str(exc)}
            finally:
                exc.close()
            if exc.code >= 500:
                raise CoordinatorUnreachable(
                    f"coordinator 5xx: {payload.get('error')}"
                ) from None
            return exc.code, payload
        except (urllib.error.URLError, OSError, TimeoutError,
                ValueError) as exc:
            raise CoordinatorUnreachable(str(exc)) from None

    def register(self, name, pid=None):
        status, payload = self._post("/v1/nodes/register",
                                     {"name": name, "pid": pid})
        if status != 200:
            raise CoordinatorUnreachable(
                f"register rejected: {payload.get('error')}")
        return payload

    def heartbeat(self, node_id):
        """True while the coordinator knows us; False = re-register."""
        status, _payload = self._post(f"/v1/nodes/{node_id}/heartbeat")
        return status == 200

    def lease(self, node_id):
        """Claim a shard; the payload says shard/idle/done/404."""
        status, payload = self._post(f"/v1/nodes/{node_id}/lease")
        if status == 404:
            return None             # evicted: caller re-registers
        return payload

    def result(self, node_id, body):
        status, payload = self._post(f"/v1/nodes/{node_id}/result",
                                     body)
        if status != 200:
            raise CoordinatorUnreachable(
                f"result rejected ({status}): {payload.get('error')}")
        return payload


def normalize_cluster_task(spec):
    """Re-canonicalize a shard's task dict from the wire.

    JSON turned the codec's tuples into lists; rebuilding through
    :func:`~repro.dse.parallel.make_task` restores the exact canonical
    form every other consumer of the worker boundary uses.
    """
    from repro.dse.parallel import make_task

    return make_task(
        spec["name"], spec["core_names"], spec["subsets"],
        scale=spec["scale"],
        max_invocations=spec["max_invocations"],
        with_amdahl=spec["with_amdahl"], engine=spec.get("engine"),
        arbitration=spec.get("arbitration"))


class FleetWorker:
    """The fleet-membership loop of one ``--worker-of`` service."""

    def __init__(self, service, coordinator_url, node_name=None):
        self.service = service
        self.client = ClusterClient(coordinator_url)
        self.node_name = node_name or \
            f"{socket.gethostname()}:{os.getpid()}"
        self.node_id = None
        self.completed = 0
        self.state = "connecting"
        self._reregister = None

    def to_json(self):
        return {
            "coordinator": self.client.base_url,
            "node_name": self.node_name,
            "node_id": self.node_id,
            "state": self.state,
            "completed": self.completed,
        }

    # ------------------------------------------------------------------
    # Outer loop: register -> (heartbeat || lease) -> re-register.

    async def run(self):
        backoff = BACKOFF_BASE
        while not self.service.draining:
            try:
                info = await asyncio.to_thread(
                    self.client.register, self.node_name, os.getpid())
            except CoordinatorUnreachable:
                self.state = "disconnected"
                await asyncio.sleep(backoff)
                backoff = min(BACKOFF_MAX, backoff * 2)
                continue
            backoff = BACKOFF_BASE
            self.node_id = info["node_id"]
            self.state = "registered"
            flight_event("cluster.worker_joined",
                         node=self.node_id,
                         coordinator=self.client.base_url)
            self._reregister = asyncio.Event()
            heartbeats = asyncio.create_task(
                self._heartbeat_loop(info.get(
                    "heartbeat_interval", 1.0)))
            try:
                await self._lease_loop(info)
            finally:
                heartbeats.cancel()
                try:
                    await heartbeats
                except asyncio.CancelledError:
                    pass

    async def _heartbeat_loop(self, interval):
        """Liveness on its own cadence, independent of evaluations."""
        from repro.resilience.faultinject import (
            consume_heartbeat_drop, heartbeat_delay,
        )

        while True:
            await asyncio.sleep(interval)
            if consume_heartbeat_drop():
                continue            # injected silence
            delay = heartbeat_delay()
            if delay:
                await asyncio.sleep(delay)
            try:
                alive = await asyncio.to_thread(
                    self.client.heartbeat, self.node_id)
            except CoordinatorUnreachable:
                continue            # lease loop owns reconnection
            if not alive:
                self._reregister.set()
                return

    async def _lease_loop(self, info):
        """Pull shards until draining, eviction, or disconnection."""
        poll = info.get("poll_interval", 0.25)
        while not self.service.draining:
            if self._reregister.is_set():
                return              # evicted: outer loop re-registers
            try:
                grant = await asyncio.to_thread(
                    self.client.lease, self.node_id)
            except CoordinatorUnreachable:
                self.state = "disconnected"
                await asyncio.sleep(poll)
                continue
            if grant is None:
                return              # 404: evicted, re-register
            if grant.get("done"):
                self.state = "idle"
                await asyncio.sleep(poll * 4)
                continue
            if grant.get("idle"):
                self.state = "idle"
                await asyncio.sleep(grant.get("poll_interval", poll))
                continue
            await self._run_shard(grant)

    # ------------------------------------------------------------------
    # One shard: faults -> evaluate -> verified submit.

    async def _run_shard(self, grant):
        from repro.cluster.coordinator import record_checksum
        from repro.resilience.faultinject import node_kill

        name, key = grant["name"], grant["key"]
        self.state = f"evaluating:{name}"
        # Deterministic chaos hook: die like an OOM-kill would, with
        # the lease held — the coordinator must recover via expiry.
        if node_kill(name):
            os.kill(os.getpid(), signal.SIGKILL)

        task = normalize_cluster_task(grant["task"])
        body = {"name": name, "key": key}
        try:
            import time
            started = time.perf_counter()
            payload, source = await self.service._evaluate_keyed(
                task, key, blocking=True)
            body.update(
                record=payload, checksum=record_checksum(payload),
                seconds=round(time.perf_counter() - started, 6),
                source=source)
        except EvaluationTimeout as exc:
            body["failure"] = {"kind": "timeout",
                               "error": type(exc).__name__,
                               "message": str(exc), "attempts": 1}
        except Exception as exc:
            body["failure"] = {"kind": "error",
                               "error": type(exc).__name__,
                               "message": str(exc), "attempts": 1}
        delivered = await self._submit(body)
        if delivered and "record" in body:
            self.completed += 1
            counter("repro_cluster_shards_completed_total",
                    "shards this node evaluated and delivered").inc()
        self.state = "registered"

    async def _submit(self, body):
        """Deliver one result with bounded retries.

        Undeliverable results are abandoned (counted): the lease will
        expire and the shard re-dispatches; determinism makes the redo
        free of risk, and the local cache keeps our copy warm.
        """
        backoff = BACKOFF_BASE
        for _attempt in range(RESULT_ATTEMPTS):
            try:
                await asyncio.to_thread(
                    self.client.result, self.node_id, body)
                return True
            except CoordinatorUnreachable:
                await asyncio.sleep(backoff)
                backoff = min(BACKOFF_MAX, backoff * 2)
        counter("repro_cluster_results_abandoned_total",
                "computed results the worker could not deliver").inc()
        flight_event("cluster.result_abandoned",
                     shard=body.get("name"))
        return False
