"""Fault-tolerant multi-node sweeps.

The cluster layer turns the one-box sweep into a fleet: a coordinator
(`repro coordinate`) owns the sweep definition and the shared
content-addressed store; worker nodes (``repro serve --worker-of``)
pull shard leases, evaluate them with the ordinary service machinery,
and push checksum-verified results back.  Leases expire and
re-dispatch, idle nodes hedge stragglers, and the first verified
result wins — all safe because results are content-keyed and
byte-deterministic.  See ``docs/cluster.md``.
"""

from repro.cluster.backends import (
    CHECKSUM_HEADER, HTTPPeerBackend, PeerUnavailable, TieredCache,
)
from repro.cluster.coordinator import (
    Coordinator, CoordinatorConfig, announce_stderr, record_checksum,
    run_coordinated,
)
from repro.cluster.harness import (
    WorkerHandle, kill_worker, run_cluster, spawn_worker,
)
from repro.cluster.leases import (
    DEFAULT_HEDGE_AFTER, DEFAULT_LEASE_TTL, Lease, LeaseTable,
)
from repro.cluster.registry import (
    DEFAULT_HEARTBEAT_TTL, Node, NodeRegistry,
)
from repro.cluster.worker import (
    ClusterClient, CoordinatorUnreachable, FleetWorker,
    normalize_cluster_task,
)

__all__ = [
    "CHECKSUM_HEADER",
    "ClusterClient",
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorUnreachable",
    "DEFAULT_HEARTBEAT_TTL",
    "DEFAULT_HEDGE_AFTER",
    "DEFAULT_LEASE_TTL",
    "FleetWorker",
    "HTTPPeerBackend",
    "Lease",
    "LeaseTable",
    "Node",
    "NodeRegistry",
    "PeerUnavailable",
    "TieredCache",
    "WorkerHandle",
    "announce_stderr",
    "kill_worker",
    "normalize_cluster_task",
    "record_checksum",
    "run_cluster",
    "run_coordinated",
    "spawn_worker",
]
