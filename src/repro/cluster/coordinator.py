"""The sweep coordinator: a control-plane HTTP service for a fleet.

``repro coordinate`` runs one of these.  It owns the sweep definition
(benchmarks x cores x subsets at one scale), the shared
content-addressed store, the node registry and the lease table — and
evaluates nothing itself.  Workers (``repro serve --worker-of URL``)
pull shard leases, evaluate them with their normal service machinery
(cache -> coalesce -> slots -> pool), and push verified results back.

Protocol (all JSON over the same stdlib HTTP layer the service uses):

- ``POST /v1/nodes/register`` ``{name, pid}`` -> ``{node_id, ...}``
- ``POST /v1/nodes/{id}/heartbeat`` -> 200, or 404 (re-register)
- ``POST /v1/nodes/{id}/lease`` -> a shard, ``{idle}``, or ``{done}``
- ``POST /v1/nodes/{id}/result`` — checksum-verified; first wins
- ``GET/PUT /v1/cache/{key}`` — canonical entry bytes with an
  ``X-Repro-Checksum`` header (the peer-cache wire protocol)
- ``GET /v1/healthz`` — nodes, shard states, live leases

Determinism contract: the merged artifact is built exactly like
:func:`repro.dse.sweep.run_sweep` builds its own — records rebuilt
from canonical payloads, merged in sorted-benchmark order — so
``dumps_sweep`` bytes are identical to a serial one-box run no matter
which nodes lived, died, or answered twice.
"""

import asyncio
import json
import sys
import time

from repro.dse.cache import (
    CACHE_FORMAT, LocalDirBackend, cache_key, default_cache_dir,
    dumps_entry, entry_checksum, entry_payload, engine_version_hash,
)
from repro.dse.parallel import make_task
from repro.dse.sweep import SweepResult, SweepStats, record_from_json
from repro.obs import (
    counter, flight_event, set_blackbox_dir, span,
)
from repro.service.http import (
    MAX_HEADER_BYTES, Response, Router, handle_connection,
)
from repro.cluster.backends import CHECKSUM_HEADER
from repro.cluster.leases import (
    DEFAULT_HEDGE_AFTER, DEFAULT_LEASE_TTL, LeaseTable,
)
from repro.cluster.registry import DEFAULT_HEARTBEAT_TTL, NodeRegistry


def record_checksum(record):
    """Integrity checksum a worker sends with a shard result.

    Over the minified canonical record serialization, so coordinator
    and worker agree on the bytes being checksummed regardless of
    transport framing.
    """
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return entry_checksum(blob)


class CoordinatorConfig:
    """Tunables for one coordinated sweep."""

    def __init__(self, host="127.0.0.1", port=8900, names=None,
                 core_names=None, subsets=None, scale=0.5,
                 max_invocations=8, with_amdahl=False, engine=None,
                 arbitration=None, cache_dir=None,
                 lease_ttl=DEFAULT_LEASE_TTL,
                 heartbeat_ttl=DEFAULT_HEARTBEAT_TTL,
                 hedge_after=DEFAULT_HEDGE_AFTER,
                 poll_interval=0.25, timeout=None):
        self.host = host
        self.port = port
        self.names = names
        self.core_names = core_names
        self.subsets = subsets
        self.scale = scale
        self.max_invocations = max_invocations
        self.with_amdahl = with_amdahl
        self.engine = engine
        self.arbitration = arbitration
        self.cache_dir = cache_dir
        self.lease_ttl = lease_ttl
        self.heartbeat_ttl = heartbeat_ttl
        self.hedge_after = hedge_after
        self.poll_interval = poll_interval
        self.timeout = timeout


class Coordinator:
    """One coordinated sweep: registry + leases + shared store."""

    def __init__(self, config):
        from repro.core_model.config import DSE_CORES
        from repro.dse.sweep import ALL_SUBSETS
        from repro.workloads import WORKLOADS

        self.config = config
        names = list(config.names) if config.names is not None \
            else sorted(WORKLOADS)
        names = list(dict.fromkeys(names))
        for name in names:
            if name not in WORKLOADS:
                raise KeyError(f"unknown workload {name!r}")
        self.names = names
        self.core_names = tuple(config.core_names or DSE_CORES)
        self.subsets = tuple(tuple(s) for s in
                             (config.subsets or ALL_SUBSETS))
        arbitration = config.arbitration
        if arbitration is not None and hasattr(arbitration, "to_spec"):
            arbitration = arbitration.to_spec()
        self.arbitration = arbitration

        self.cache = LocalDirBackend(
            config.cache_dir if config.cache_dir is not None
            else default_cache_dir())
        set_blackbox_dir(self.cache.root / "blackbox")

        self.tasks = {}
        self.keys = {}
        for name in self.names:
            self.tasks[name] = make_task(
                name, self.core_names, self.subsets,
                scale=config.scale,
                max_invocations=config.max_invocations,
                with_amdahl=config.with_amdahl, engine=config.engine,
                arbitration=arbitration)
            self.keys[name] = cache_key(
                name, config.scale, self.core_names, self.subsets,
                config.max_invocations, config.with_amdahl,
                arbitration=arbitration)

        self.stats = SweepStats(workers=0, cache_dir=self.cache.root)
        self.payloads = {}
        self.failed = {}            # name -> failure dict
        # Cache-warm shards resolve immediately; only cold ones are
        # leased out (exactly run_sweep's warm-start semantics).
        cold = []
        for name in self.names:
            started = time.perf_counter()
            payload = self.cache.load(self.keys[name])
            if payload is not None:
                self.payloads[name] = payload
                self.stats.add(name, "cached",
                               time.perf_counter() - started)
            else:
                cold.append(name)
        self.registry = NodeRegistry(
            heartbeat_ttl=config.heartbeat_ttl)
        self.leases = LeaseTable(cold, lease_ttl=config.lease_ttl,
                                 hedge_after=config.hedge_after)

        self.host = config.host
        self.port = config.port
        self.started_at = time.time()
        self._server = None
        self._tick_task = None
        self._done_event = None

        self.router = Router()
        self.router.add("POST", "/v1/nodes/register",
                        self.handle_register)
        self.router.add("POST", "/v1/nodes/{id}/heartbeat",
                        self.handle_heartbeat)
        self.router.add("POST", "/v1/nodes/{id}/lease",
                        self.handle_lease)
        self.router.add("POST", "/v1/nodes/{id}/result",
                        self.handle_result)
        self.router.add("GET", "/v1/cache/{key}",
                        self.handle_cache_get)
        self.router.add("PUT", "/v1/cache/{key}",
                        self.handle_cache_put)
        self.router.add("GET", "/v1/healthz", self.handle_healthz)

    # ------------------------------------------------------------------
    # Completion accounting.

    @property
    def complete(self):
        """Every shard resolved — a payload or a terminal failure."""
        return all(name in self.payloads or name in self.failed
                   for name in self.names)

    def _check_done(self):
        if self.complete and self._done_event is not None:
            self._done_event.set()

    # ------------------------------------------------------------------
    # Fleet handlers.

    async def handle_register(self, request, params):
        body = request.json()
        node_id = self.registry.register(
            body.get("name") or "worker", pid=body.get("pid"))
        return Response.json({
            "node_id": node_id,
            "lease_ttl": self.leases.lease_ttl,
            "heartbeat_ttl": self.registry.heartbeat_ttl,
            "heartbeat_interval": max(
                0.05, self.registry.heartbeat_ttl / 4.0),
            "poll_interval": self.config.poll_interval,
        })

    async def handle_heartbeat(self, request, params):
        if not self.registry.heartbeat(params["id"]):
            return Response.error(
                404, f"unknown node {params['id']!r} (re-register)")
        return Response.json({"ok": True})

    async def handle_lease(self, request, params):
        node_id = params["id"]
        if not self.registry.is_live(node_id):
            return Response.error(
                404, f"unknown node {node_id!r} (re-register)")
        if self.complete:
            return Response.json({"done": True})
        lease = self.leases.claim(node_id)
        if lease is None:
            return Response.json({
                "idle": True,
                "poll_interval": self.config.poll_interval,
            })
        return Response.json({
            "name": lease.name,
            "key": self.keys[lease.name],
            "task": self.tasks[lease.name],
            "lease_ttl": self.leases.lease_ttl,
            "hedged": lease.hedged,
        })

    async def handle_result(self, request, params):
        """Accept one shard result: verify, first-wins, persist.

        Verification: the shard must be one of ours, the key must
        match our own computation of it, and the record checksum must
        match the body — a torn or tampered result is rejected (the
        worker's lease simply expires and the shard re-dispatches).
        Results are accepted even from evicted nodes: a verified
        result is a verified result, and byte determinism makes the
        origin irrelevant.
        """
        node_id = params["id"]
        body = request.json()
        name = body.get("name")
        if name not in self.keys:
            return Response.error(400, f"unknown shard {name!r}")

        failure = body.get("failure")
        if failure is not None:
            if name not in self.payloads and name not in self.failed:
                self.failed[name] = dict(failure, name=name)
                self.stats.add_failure(dict(failure, name=name))
                flight_event("cluster.shard_failed", shard=name,
                             node=node_id)
            self._check_done()
            return Response.json({"accepted": True, "failed": True})

        record = body.get("record")
        if body.get("key") != self.keys[name] \
                or not isinstance(record, dict) \
                or body.get("checksum") != record_checksum(record):
            counter("repro_cluster_results_total",
                    "shard results by disposition").inc(
                        disposition="rejected")
            flight_event("cluster.result_rejected", shard=name,
                         node=node_id)
            return Response.error(400, "result failed verification")

        won = self.leases.complete(name, node_id, record)
        if won:
            self.payloads[name] = record
            self.failed.pop(name, None)
            self.cache.store(self.keys[name], record, meta={
                "benchmark": name,
                "scale": float(self.config.scale),
                "max_invocations": int(self.config.max_invocations),
                "engine": engine_version_hash(),
            })
            self.stats.add(name, "computed",
                           float(body.get("seconds") or 0.0))
            self.registry.record_completion(node_id)
        self._check_done()
        return Response.json({"accepted": won,
                              "duplicate": not won})

    # ------------------------------------------------------------------
    # Shared-store handlers (the peer-cache wire protocol).

    async def handle_cache_get(self, request, params):
        """Serve the exact on-disk entry bytes, checksummed."""
        path = self.cache.path_for(params["key"])
        try:
            blob = path.read_bytes()
        except OSError:
            return Response.error(
                404, f"no cache entry {params['key'][:12]}...")
        return Response(
            status=200, body=blob,
            headers={CHECKSUM_HEADER: entry_checksum(blob)})

    async def handle_cache_put(self, request, params):
        """Verify and persist a pushed entry (atomic local write)."""
        key = params["key"]
        expected = request.headers.get(CHECKSUM_HEADER.lower())
        if expected is not None \
                and entry_checksum(request.body) != expected:
            counter("repro_peer_cache_corrupt_total",
                    "peer cache responses that failed verification") \
                .inc(why="put-checksum")
            return Response.error(400, "checksum mismatch")
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return Response.error(400, "unparseable entry")
        if not isinstance(payload, dict) \
                or payload.get("format") != CACHE_FORMAT \
                or payload.get("key") != key \
                or "record" not in payload:
            return Response.error(400, "entry identity mismatch")
        self.cache.store(key, payload["record"],
                         meta=payload.get("meta"))
        return Response.json({"stored": True})

    async def handle_healthz(self, request, params):
        return Response.json({
            "status": "done" if self.complete else "coordinating",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "benchmarks": len(self.names),
            "nodes": self.registry.to_json(),
            "shards": self.leases.to_json(),
            "resolved": {
                "cached": self.stats.hits,
                "computed": self.stats.misses,
                "failed": len(self.failed),
            },
        })

    # ------------------------------------------------------------------
    # Dispatch + lifecycle.

    async def dispatch(self, request):
        handler, params, _template = self.router.match(
            request.method, request.path)
        if handler is None and params is None:
            return Response.error(404, f"no route for {request.path}")
        if handler is None:
            return Response.error(
                405, f"{request.method} not allowed",
                headers={"Allow": ", ".join(params)})
        try:
            return await handler(request, params)
        except Exception as exc:
            return Response.error(
                500, f"{type(exc).__name__}: {exc}")

    async def _tick(self):
        """Periodic fleet maintenance: eviction + lease expiry."""
        interval = max(0.05, min(0.5,
                                 self.registry.heartbeat_ttl / 4.0))
        while True:
            await asyncio.sleep(interval)
            for node_id in self.registry.sweep_dead():
                self.leases.release_node(node_id)
            self.leases.expire()

    async def start(self):
        self._done_event = asyncio.Event()
        self._check_done()          # all-warm sweeps finish instantly
        self._server = await asyncio.start_server(
            lambda r, w: handle_connection(self.dispatch, r, w),
            host=self.config.host, port=self.config.port,
            limit=MAX_HEADER_BYTES)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._tick_task = asyncio.create_task(self._tick())

    async def wait_complete(self, timeout=None):
        """Block until every shard resolves; False on timeout."""
        try:
            await asyncio.wait_for(self._done_event.wait(),
                                   timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self):
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=1.0)
            except asyncio.TimeoutError:
                pass

    def build_sweep(self):
        """Merge resolved shards exactly like ``run_sweep`` does.

        Sorted-name order over canonical payloads: worker count, node
        deaths, hedged duplicates and cache state cannot perturb one
        byte of the artifact.
        """
        sweep = SweepResult(self.core_names, self.subsets)
        for name in sorted(self.payloads):
            sweep.add(record_from_json(name, self.payloads[name],
                                       self.core_names, self.subsets))
        self.stats.workers = (len(self.registry)
                              + len(self.registry.evicted))
        self.stats.entries.sort(key=lambda e: e["name"])
        self.stats.failures.sort(key=lambda f: f["name"])
        sweep.stats = self.stats
        sweep.arbitration = self.arbitration
        return sweep


def run_coordinated(config, announce=None):
    """Blocking entry point behind ``repro coordinate``.

    Starts the coordinator, waits for the fleet to resolve every
    shard (bounded by ``config.timeout``), merges, and returns the
    :class:`~repro.dse.sweep.SweepResult`.  Raises ``TimeoutError``
    when the deadline passes with shards unresolved.
    """
    from repro.dse.sweep import _append_runlog

    coordinator = Coordinator(config)

    async def _main():
        with span("cluster.coordinate",
                  benchmarks=len(coordinator.names)):
            await coordinator.start()
            if announce is not None:
                announce(coordinator)
            finished = await coordinator.wait_complete(
                timeout=config.timeout)
            await coordinator.stop()
            return finished

    finished = asyncio.run(_main())
    if not finished:
        counts = coordinator.leases.counts()
        raise TimeoutError(
            f"coordinated sweep timed out after {config.timeout}s "
            f"with {counts['done']}/{counts['total']} cold shards "
            f"done ({len(coordinator.registry)} live nodes)")
    sweep = coordinator.build_sweep()
    _append_runlog(coordinator.cache.root, sweep.stats,
                   sweep.stats.workers)
    return sweep


def announce_stderr(coordinator):
    """Default ``announce`` hook: one parseable line on stderr."""
    print(f"[coordinate] listening on "
          f"http://{coordinator.host}:{coordinator.port} "
          f"({len(coordinator.names)} benchmarks, "
          f"{coordinator.leases.counts()['pending']} cold, "
          f"cache={coordinator.cache.root})",
          file=sys.stderr, flush=True)
