"""Cluster chaos harness: real processes, deterministic faults.

Spawns worker nodes as genuine subprocesses (``repro serve
--worker-of URL``) around an in-process coordinator, so chaos tests
exercise the same process boundaries production does: a SIGKILLed
worker really disappears mid-lease, heartbeats really stop, and the
coordinator's TTL eviction + lease expiry is the only recovery path.

Fault injection composes with the per-process ``$REPRO_FAULT_SPEC``
environment contract: each worker can carry its own spec (one worker
``nodekill``s itself, another tears peer-cache reads) while the
coordinator and the remaining fleet run clean.

The proof obligation lives in :func:`run_cluster`'s callers: however
many workers die, the merged artifact's ``dumps_sweep`` bytes must
equal a serial ``run_sweep`` of the same definition.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.cluster.coordinator import run_coordinated

#: Seconds to wait for a worker to exit after SIGTERM before SIGKILL.
REAP_TIMEOUT = 10.0


class WorkerHandle:
    """One spawned worker-node subprocess."""

    def __init__(self, process, node_name, cache_dir, log_path=None):
        self.process = process
        self.node_name = node_name
        self.cache_dir = cache_dir
        self.log_path = log_path

    @property
    def pid(self):
        return self.process.pid

    @property
    def alive(self):
        return self.process.poll() is None

    @property
    def returncode(self):
        return self.process.returncode

    def kill(self):
        """SIGKILL — the chaos primitive; no drain, no goodbye."""
        if self.alive:
            self.process.kill()

    def terminate(self):
        """SIGTERM — the polite shutdown the service drains on."""
        if self.alive:
            self.process.terminate()

    def wait(self, timeout=REAP_TIMEOUT):
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None

    def reap(self):
        """Terminate, wait, escalate to SIGKILL; returns exit code."""
        self.terminate()
        code = self.wait()
        if code is None:
            self.kill()
            code = self.wait()
        return code


def _src_path():
    """The import root of this tree, for subprocess PYTHONPATH."""
    import repro
    return str(Path(repro.__file__).resolve().parents[1])


def spawn_worker(coordinator_url, cache_dir=None, node_name=None,
                 workers=1, pool_mode="thread", fault_spec=None,
                 log_path=None, extra_env=None):
    """Start one ``repro serve --worker-of`` subprocess.

    *cache_dir* becomes the worker's **local** cache tier (each node
    its own, as on a real fleet); the coordinator's store is reached
    through the peer backend.  *fault_spec* seeds that process's
    deterministic fault plan.  Output goes to *log_path* (or is
    discarded) so harness users never deadlock on a full pipe.
    """
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--host", "127.0.0.1", "--port", "0",
           "--workers", str(workers), "--pool", pool_mode,
           "--worker-of", coordinator_url]
    if node_name:
        cmd += ["--node-name", node_name]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]

    env = dict(os.environ)
    src = _src_path()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else os.pathsep.join((src, existing))
    if fault_spec is not None:
        from repro.resilience.faultinject import ENV_VAR
        env[ENV_VAR] = fault_spec
    if extra_env:
        env.update(extra_env)

    if log_path is not None:
        log_handle = open(log_path, "ab")
    else:
        log_handle = subprocess.DEVNULL
    try:
        process = subprocess.Popen(
            cmd, stdout=log_handle, stderr=log_handle, env=env,
            start_new_session=True)
    finally:
        if log_handle is not subprocess.DEVNULL:
            log_handle.close()
    return WorkerHandle(process, node_name, cache_dir,
                        log_path=log_path)


def run_cluster(config, workers=2, worker_cache_dirs=None,
                fault_specs=None, pool_mode="thread",
                pool_workers=1, log_dir=None, on_spawn=None):
    """One coordinated sweep over a freshly spawned worker fleet.

    Runs the coordinator in-process (``run_coordinated``), spawning
    *workers* subprocesses once the port is bound.  ``fault_specs``
    maps worker index -> that process's ``$REPRO_FAULT_SPEC`` (e.g.
    ``{0: "nodekill:task=conv"}`` makes worker 0 SIGKILL itself on
    accepting the ``conv`` lease).  All workers are reaped on the way
    out, success or not.

    Returns ``(sweep, handles)`` — handles carry exit codes so chaos
    tests can assert who died how.
    """
    fault_specs = fault_specs or {}
    handles = []

    def announce(coordinator):
        url = f"http://{coordinator.host}:{coordinator.port}"
        for index in range(workers):
            cache_dir = None
            if worker_cache_dirs is not None:
                cache_dir = worker_cache_dirs[index]
            log_path = None
            if log_dir is not None:
                log_path = Path(log_dir) / f"worker-{index}.log"
            handle = spawn_worker(
                url, cache_dir=cache_dir,
                node_name=f"worker-{index}",
                workers=pool_workers, pool_mode=pool_mode,
                fault_spec=fault_specs.get(index),
                log_path=log_path)
            handles.append(handle)
            if on_spawn is not None:
                on_spawn(handle)

    try:
        sweep = run_coordinated(config, announce=announce)
    finally:
        for handle in handles:
            handle.reap()
    return sweep, handles


def kill_worker(handle):
    """SIGKILL one worker's whole session (pool children included)."""
    if not handle.alive:
        return
    try:
        os.killpg(os.getpgid(handle.pid), signal.SIGKILL)
    except (OSError, ProcessLookupError):
        handle.kill()
