"""Worker-node registry: membership, heartbeats, eviction.

The coordinator's view of its fleet.  Nodes join by registering (and
re-register after a partition heals), prove liveness by heartbeating,
and are evicted when their heartbeat goes stale past the TTL — at
which point their leases are released for re-dispatch and a blackbox
dump preserves the coordinator's recent event ring for the
post-mortem (``reason: node-evicted:<id>``).

Node ids are deterministic: ``w<seq>-<sha256(name)[:6]>`` — the join
sequence number plus a digest of the advertised name.  Two runs with
the same join order mint the same ids, which keeps chaos-test
assertions and log diffs stable.

The registry is clock-injectable and synchronous; the coordinator
serializes access through its event loop.
"""

import hashlib
import time

from repro.obs import counter, dump_blackbox, flight_event, gauge

#: Default seconds without a heartbeat before a node is declared dead.
DEFAULT_HEARTBEAT_TTL = 5.0


class Node:
    """One registered worker node."""

    __slots__ = ("node_id", "name", "pid", "registered_at",
                 "last_heartbeat", "heartbeats", "completed", "evicted")

    def __init__(self, node_id, name, pid, now):
        self.node_id = node_id
        self.name = name
        self.pid = pid
        self.registered_at = now
        self.last_heartbeat = now
        self.heartbeats = 0
        self.completed = 0
        self.evicted = False

    def to_json(self, now):
        return {
            "node_id": self.node_id,
            "name": self.name,
            "pid": self.pid,
            "age_seconds": round(now - self.registered_at, 3),
            "heartbeat_age_seconds": round(
                now - self.last_heartbeat, 3),
            "heartbeats": self.heartbeats,
            "completed": self.completed,
            "evicted": self.evicted,
        }


class NodeRegistry:
    """Membership table with heartbeat-TTL eviction."""

    def __init__(self, heartbeat_ttl=DEFAULT_HEARTBEAT_TTL,
                 clock=time.monotonic):
        self.heartbeat_ttl = heartbeat_ttl
        self.clock = clock
        self.nodes = {}             # node_id -> Node (live only)
        self.evicted = {}           # node_id -> Node (tombstones)
        self._seq = 0

    def register(self, name, pid=None):
        """Admit a node; returns its deterministic id."""
        self._seq += 1
        digest = hashlib.sha256(str(name).encode()).hexdigest()[:6]
        node_id = f"w{self._seq}-{digest}"
        self.nodes[node_id] = Node(node_id, name, pid, self.clock())
        counter("repro_cluster_nodes_registered_total",
                "worker nodes that joined the fleet").inc()
        gauge("repro_cluster_nodes_live",
              "currently live worker nodes").set(len(self.nodes))
        flight_event("cluster.node_registered", node=node_id,
                     name=str(name))
        return node_id

    def heartbeat(self, node_id):
        """Record liveness; False when the node is unknown/evicted.

        A False return tells the worker to re-register — the standard
        recovery after a partition outlived the TTL.
        """
        node = self.nodes.get(node_id)
        if node is None:
            return False
        node.last_heartbeat = self.clock()
        node.heartbeats += 1
        return True

    def sweep_dead(self):
        """Evict nodes whose heartbeat is stale; returns their ids.

        Eviction dumps the flight-recorder ring (blackbox) so the
        events leading up to the death — dispatches, lease grants,
        the silence itself — survive for inspection.
        """
        now = self.clock()
        dead = [node_id for node_id, node in self.nodes.items()
                if now - node.last_heartbeat > self.heartbeat_ttl]
        for node_id in dead:
            node = self.nodes.pop(node_id)
            node.evicted = True
            self.evicted[node_id] = node
            counter("repro_cluster_nodes_evicted_total",
                    "worker nodes evicted on heartbeat timeout").inc()
            flight_event("cluster.node_evicted", node=node_id,
                         stale_seconds=round(
                             now - node.last_heartbeat, 3))
            dump_blackbox(f"node-evicted:{node_id}",
                          trace_id=f"evict-{node_id}")
        if dead:
            gauge("repro_cluster_nodes_live",
                  "currently live worker nodes").set(len(self.nodes))
        return dead

    def record_completion(self, node_id):
        node = self.nodes.get(node_id)
        if node is not None:
            node.completed += 1

    def is_live(self, node_id):
        return node_id in self.nodes

    def to_json(self):
        now = self.clock()
        return {
            "live": [node.to_json(now)
                     for _, node in sorted(self.nodes.items())],
            "evicted": [node.to_json(now)
                        for _, node in sorted(self.evicted.items())],
        }

    def __len__(self):
        return len(self.nodes)
