#!/usr/bin/env python3
"""Paper section 2.3 walkthrough: the fused multiply-add transform.

Reproduces Figure 4 end-to-end on a small kernel:

  (a) construct the TDG via the simulator;
  (b) render a window of the original µDG;
  (c) run the fma *analyzer* (which fmul/fadd pairs fuse);
  (d) apply the *transformer* (retype fmul -> fma, elide fadd);
  (e) render the core+accel µDG and compare critical paths.

Run:  python examples/fma_walkthrough.py
"""

from repro.accel import FmaTransform
from repro.accel.fma import find_fma_pairs
from repro.core_model import OOO2
from repro.programs import KernelBuilder, disassemble
from repro.tdg import TimingEngine, construct_tdg
from repro.tdg.constructor import build_window_graph


def build_kernel():
    """A small loop with one fusable fmul->fadd pair per iteration."""
    k = KernelBuilder("fma_demo")
    a = k.array("a", [float(i % 7) for i in range(32)])
    b = k.array("b", [0.5] * 32)
    out = k.array("out", 32)
    with k.function("main"):
        with k.loop(32) as i:
            av = k.ld(a, i)
            bv = k.ld(b, i)
            prod = k.fmul(av, bv)          # single use ...
            total = k.fadd(prod, 1.0)      # ... feeding an fadd
            k.st(out, i, total)
        k.halt()
    return k.build()


def main():
    program, memory = build_kernel()
    print("== program (paper Fig. 4(a)) ==")
    print(disassemble(program))

    tdg = construct_tdg(program, memory)

    print("== analyzer plan (Fig. 4(c)) ==")
    pairs = find_fma_pairs(program)
    for fadd_uid, fmul_uid in pairs.items():
        print(f"  fuse  {program.instruction(fmul_uid)}  +  "
              f"{program.instruction(fadd_uid)}")

    print("\n== original µDG window (Fig. 4(b)) ==")
    window = tdg.trace.instructions[2:10]
    graph = build_window_graph(window, OOO2)
    print(graph.render())

    transform = FmaTransform(program)
    transformed = transform.apply(tdg.trace.instructions)

    print("\n== core+accel µDG window (Fig. 4(e)) ==")
    graph2 = build_window_graph(transformed[2:9], OOO2)
    print(graph2.render())

    before = TimingEngine(OOO2).run(tdg.trace.instructions)
    after = TimingEngine(OOO2).run(transformed)
    print(f"\noriginal:    {before.cycles} cycles "
          f"({before.instructions} insts)")
    print(f"transformed: {after.cycles} cycles "
          f"({after.instructions} insts)")
    print(f"speedup:     {before.cycles / after.cycles:.3f}x")

    print("\ncritical-path edge mix (original window):")
    for kind, count in sorted(graph.critical_kind_histogram().items(),
                              key=lambda kv: -kv[1]):
        print(f"  {kind.value:<18} {count}")


if __name__ == "__main__":
    main()
