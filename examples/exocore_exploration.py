#!/usr/bin/env python3
"""Mini design-space exploration (paper section 5 in miniature).

Sweeps a handful of benchmarks across all 64 ExoCore design points and
prints the Figure 12-style ranking plus the energy-performance
frontier, including the paper's headline comparison (an OOO2-based
three-BSA ExoCore against OOO6+SIMD).

Run:  python examples/exocore_exploration.py
"""

from repro.dse import run_sweep, fig12_table, subset_label
from repro.dse.report import render_table

BENCHMARKS = ("conv", "stencil", "kmeans", "cjpeg1", "tpch1",
              "181.mcf", "456.hmmer")


def pareto_frontier(rows):
    """Designs not dominated in (speedup, energy_eff)."""
    frontier = []
    for row in rows:
        dominated = any(
            other["speedup"] >= row["speedup"]
            and other["energy_eff"] >= row["energy_eff"]
            and (other["speedup"] > row["speedup"]
                 or other["energy_eff"] > row["energy_eff"])
            for other in rows
        )
        if not dominated:
            frontier.append(row)
    return sorted(frontier, key=lambda r: r["speedup"])


def main():
    print(f"sweeping {len(BENCHMARKS)} benchmarks x 64 designs ...")
    sweep = run_sweep(names=BENCHMARKS, scale=0.5, with_amdahl=False)
    rows = fig12_table(sweep)

    print("\n== top ten designs by speedup (relative to IO2) ==")
    print(render_table(rows[-10:],
                       columns=("design", "speedup", "energy_eff",
                                "area")))

    print("\n== energy-performance frontier ==")
    print(render_table(pareto_frontier(rows),
                       columns=("design", "speedup", "energy_eff",
                                "area")))

    by_name = {r["design"]: r for r in rows}
    sdn = by_name["OOO2-SDN"]
    ooo6s = by_name["OOO6-S"]
    print("\n== headline comparison (paper Fig. 3) ==")
    print(f"OOO2-SDN vs OOO6-SIMD: "
          f"{sdn['speedup'] / ooo6s['speedup']:.2f}x perf, "
          f"{sdn['energy_eff'] / ooo6s['energy_eff']:.2f}x energy eff, "
          f"{sdn['area'] / ooo6s['area']:.2f}x area")


if __name__ == "__main__":
    main()
