#!/usr/bin/env python3
"""Quickstart: model one benchmark on an ExoCore in ~40 lines.

Builds the TDG for a paper workload, evaluates the four general cores,
composes the full four-BSA ExoCore with the Oracle scheduler, and
prints the speedup / energy-efficiency / area story of paper Figure 3.

Run:  python examples/quickstart.py [benchmark-name]
"""

import sys

from repro import (
    WORKLOADS, core_by_name, evaluate_benchmark, oracle_schedule,
    exocore_area,
)

ALL_BSAS = ("simd", "dp_cgra", "ns_df", "trace_p")


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "conv"
    workload = WORKLOADS[name]
    print(f"== {name} ({workload.suite}: {workload.description})")

    # 1. Simulate once -> TDG (the expensive step, paper Fig. 2).
    tdg = workload.construct_tdg()
    print(f"trace: {len(tdg.trace)} dynamic instructions, "
          f"{len(tdg.loop_tree)} loops")

    # 2. Evaluate baselines + all per-region BSA estimates.
    evaluation = evaluate_benchmark(tdg, name=name)

    # 3. Compose ExoCores and report.
    print(f"\n{'design':<16} {'cycles':>9} {'energy(nJ)':>11} "
          f"{'speedup':>8} {'energyX':>8} {'area':>6}")
    for core_name in ("IO2", "OOO2", "OOO4", "OOO6"):
        base = evaluation.baseline(core_name)
        core_area_mm2 = exocore_area(core_by_name(core_name), ())
        print(f"{core_name:<16} {base.cycles:>9} "
              f"{base.energy_pj / 1000:>11.1f} {'1.00':>8} {'1.00':>8} "
              f"{core_area_mm2:>6.2f}")
        schedule = oracle_schedule(evaluation, core_name, ALL_BSAS)
        area = exocore_area(core_by_name(core_name), ALL_BSAS)
        speedup = base.cycles / schedule.cycles
        energy_x = base.energy_pj / schedule.energy_pj
        print(f"{core_name + '-ExoCore':<16} {schedule.cycles:>9} "
              f"{schedule.energy_pj / 1000:>11.1f} {speedup:>8.2f} "
              f"{energy_x:>8.2f} {area:>6.2f}")

    # 4. Which BSA ran what?
    schedule = oracle_schedule(evaluation, "OOO2", ALL_BSAS)
    print("\nOOO2-ExoCore region assignment:")
    for key, unit in sorted(schedule.assignment.items()):
        if unit != "gpp":
            print(f"  loop {key[1]:<14} -> {unit}")
    print(f"cycles offloaded: {schedule.offloaded_fraction:.0%}")


if __name__ == "__main__":
    main()
