#!/usr/bin/env python3
"""Write your own BSA model (paper Appendix A, "Steps in TDG Model
Construction").

Defines a new behavior-specialized accelerator from scratch — a
modulo-scheduled *loop engine* that executes one inner-loop iteration
per fixed initiation interval (II) — and evaluates it against the
built-in BSAs, following the appendix's three steps:

1. **Analysis**: find counted inner loops with a single hot path and
   derive the II from the loop body's resource needs.
2. **Transformation**: rewrite each iteration's µDG into engine
   operations chained by II edges.
3. **Scheduling**: give the Amdahl tree a static speedup estimate.

Run:  python examples/custom_bsa.py
"""

from repro.accel import AnalysisContext, BSA_REGISTRY
from repro.accel.base import BSAModel, SeqAllocator
from repro.core_model import OOO2
from repro.tdg import TimingEngine
from repro.tdg.engine import AccelResources
from repro.workloads import WORKLOADS

#: Engine lanes: memory ops per cycle the loop engine can issue.
ENGINE_MEM_LANES = 2
#: Compute ops per cycle.
ENGINE_ALU_LANES = 4


class LoopEngineModel(BSAModel):
    """A modulo-scheduled loop accelerator (custom demo BSA)."""

    name = "loop_engine"
    power_gates_core = True

    def accel_resources(self, core_config):
        return AccelResources({self.name: ENGINE_ALU_LANES})

    def region_entry_overhead(self, plan):
        return 8   # configuration + live-in DMA

    # -- step 1: analysis ------------------------------------------------
    def find_candidates(self, ctx):
        plans = {}
        for loop in ctx.forest:
            if not loop.is_inner:
                continue
            profile = ctx.path_profiles[loop.key]
            if profile.iterations < 8 \
                    or profile.hot_path_probability < 0.99:
                continue   # single-path loops only
            body_mem = sum(1 for i in loop.instructions()
                           if i.is_memory)
            body_alu = sum(1 for i in loop.instructions()
                           if not i.is_memory)
            ii = max(1,
                     (body_mem + ENGINE_MEM_LANES - 1)
                     // ENGINE_MEM_LANES,
                     (body_alu + ENGINE_ALU_LANES - 1)
                     // ENGINE_ALU_LANES)
            plans[loop.key] = {"loop": loop, "ii": ii,
                               "profile": profile}
        return plans

    # -- step 2: transformation ------------------------------------------
    def transform_interval(self, ctx, plan, interval, core_config,
                           seq_alloc):
        loop = plan["loop"]
        ii = plan["ii"]
        trace = ctx.tdg.trace.instructions
        loop_uids = {inst.uid for inst in loop.instructions()}
        stream = []
        seq_map = {}
        prev_iter_head = None
        for span_start, span_end in ctx.spans_of(loop, interval):
            iter_head = None
            for index in range(span_start, span_end):
                dyn = trace[index]
                if dyn.uid not in loop_uids:
                    continue
                if dyn.opcode.value in ("br", "jmp"):
                    continue   # control is free: counted loop
                seq = seq_alloc.next()
                extra = ()
                if iter_head is None and prev_iter_head is not None:
                    # Modulo schedule: iterations start II apart.
                    extra = ((prev_iter_head, ii),)
                inst = dyn.clone(
                    seq=seq, accel=self.name,
                    src_deps=tuple(seq_map.get(d, d)
                                   for d in dyn.src_deps),
                    extra_deps=extra, icache_lat=0,
                    mispredicted=False,
                    mem_dep=seq_map.get(dyn.mem_dep, dyn.mem_dep))
                stream.append(inst)
                seq_map[dyn.seq] = seq
                if iter_head is None:
                    iter_head = seq
            if iter_head is not None:
                prev_iter_head = iter_head
        return stream

    # -- step 3: scheduling hook ------------------------------------------
    def estimate_speedup(self, ctx, plan, core_config):
        insts_per_iter = plan["profile"].insts_per_iteration
        return max(1.0, insts_per_iter
                   / (plan["ii"] * core_config.width))


def main():
    print("evaluating the custom loop engine against built-in BSAs\n")
    print(f"{'benchmark':<12} {'loop':<10}"
          + "".join(f"{b:>12}" for b in BSA_REGISTRY)
          + f"{'loop_engine':>12}")
    print("-" * 95)
    for name in ("conv", "stencil", "nnw", "482.sphinx3"):
        tdg = WORKLOADS[name].construct_tdg(scale=0.4)
        ctx = AnalysisContext(tdg)
        custom = LoopEngineModel()
        models = {b: cls() for b, cls in BSA_REGISTRY.items()}
        models["loop_engine"] = custom
        plans = {b: m.find_candidates(ctx) for b, m in models.items()}
        for loop in ctx.forest:
            if not loop.is_inner:
                continue
            base = 0
            for s, e in ctx.intervals[loop.key]:
                base += TimingEngine(OOO2).run(
                    tdg.trace.instructions[s:e]).cycles
            if not base:
                continue
            cells = []
            for bsa, model in models.items():
                plan = plans[bsa].get(loop.key)
                if plan is None:
                    cells.append(f"{'-':>12}")
                    continue
                estimate = model.evaluate_region(ctx, plan, OOO2,
                                                 max_invocations=6)
                cells.append(f"{base / estimate.cycles:>11.2f}x")
            print(f"{name:<12} {loop.header:<10}" + "".join(cells))


if __name__ == "__main__":
    main()
