#!/usr/bin/env python3
"""Classify workload loops into the paper's Fig. 6 behavior space.

For a sample of benchmarks across the suites, prints each inner loop's
behavior class, the specialization mechanism it maps to (Table 2), and
which BSA models actually target it.

Run:  python examples/behavior_taxonomy.py
"""

from repro.accel import AnalysisContext, BSA_REGISTRY
from repro.analysis import classify_loop
from repro.workloads import WORKLOADS

SAMPLE = (
    "conv", "stencil", "nbody", "vr",          # regular
    "cjpeg1", "h264dec", "tpch1", "450.soplex",  # semi-regular
    "181.mcf", "164.gzip", "456.hmmer", "458.sjeng",  # irregular
)


def main():
    print(f"{'benchmark':<12} {'loop':<12} {'behavior class':<34} "
          f"{'targeted by'}")
    print("-" * 88)
    for name in SAMPLE:
        tdg = WORKLOADS[name].construct_tdg(scale=0.4)
        ctx = AnalysisContext(tdg)
        candidates = {
            bsa: cls().find_candidates(ctx)
            for bsa, cls in BSA_REGISTRY.items()
        }
        for loop in ctx.forest:
            if not loop.is_inner:
                continue
            behavior = classify_loop(
                ctx.dep_info(loop),
                ctx.path_profiles[loop.key],
                ctx.slice_info(loop))
            targets = [bsa for bsa, plans in candidates.items()
                       if loop.key in plans]
            print(f"{name:<12} {loop.header:<12} "
                  f"{behavior.value:<34} {', '.join(targets) or '-'}")


if __name__ == "__main__":
    main()
